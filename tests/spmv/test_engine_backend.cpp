// The node-level kernel backend (CSR vs SELL-C-sigma) must be an
// implementation detail: every engine variant has to produce the same
// distributed product with either backend, for any chunk/sigma choice.
// Oracle and pipeline drivers live in common/reference.hpp.

#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

/// Run `variant` with `options` on ranks x threads; return max abs error
/// against the sequential CSR product.
double backend_error(const CsrMatrix& a, int ranks, int threads,
                     Variant variant, const EngineOptions& options) {
  return testutil::distributed_error(a, ranks, threads, variant,
                                     minimpi::ProgressMode::kDeferred,
                                     /*repetitions=*/1, options);
}

class BackendSweep
    : public ::testing::TestWithParam<std::tuple<LocalBackend, Variant>> {};

TEST_P(BackendSweep, MatchesSequentialOnRandomMatrix) {
  const auto [backend, variant] = GetParam();
  EngineOptions options;
  options.backend = backend;
  const CsrMatrix a = matgen::random_sparse(400, 8, 21);
  EXPECT_LT(backend_error(a, 3, 2, variant, options), 1e-12);
}

TEST_P(BackendSweep, MatchesSequentialOnPoisson) {
  const auto [backend, variant] = GetParam();
  EngineOptions options;
  options.backend = backend;
  const CsrMatrix a = matgen::poisson7({.nx = 7, .ny = 7, .nz = 7});
  EXPECT_LT(backend_error(a, 4, 2, variant, options), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsTimesVariants, BackendSweep,
    ::testing::Combine(::testing::Values(LocalBackend::kCsr,
                                         LocalBackend::kSell),
                       ::testing::Values(Variant::kVectorNoOverlap,
                                         Variant::kVectorNaiveOverlap,
                                         Variant::kTaskMode)));

TEST(EngineBackend, BackendAccessorReflectsOptions) {
  const CsrMatrix a = matgen::laplacian1d(10);
  minimpi::run(1, [&](minimpi::Comm& comm) {
    const std::vector<index_t> boundaries{0, 10};
    DistMatrix dist(comm, a, boundaries);
    EngineOptions options;
    options.backend = LocalBackend::kSell;
    SpmvEngine engine(dist, 2, Variant::kVectorNoOverlap, options);
    EXPECT_EQ(engine.backend(), LocalBackend::kSell);
  });
}

TEST(EngineBackend, BackendsAgreeBitwisePerVariant) {
  // Stronger than matching the reference to tolerance: with identical
  // partitioning the two backends' owned results are compared elementwise.
  const CsrMatrix a = matgen::random_banded(350, 35, 7, 3);
  const auto x_global =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), 5);
  minimpi::RuntimeOptions runtime_options;
  runtime_options.ranks = 2;
  for (const Variant v : {Variant::kVectorNoOverlap,
                          Variant::kVectorNaiveOverlap, Variant::kTaskMode}) {
    std::vector<std::vector<value_t>> products;
    for (const LocalBackend backend :
         {LocalBackend::kCsr, LocalBackend::kSell}) {
      EngineOptions options;
      options.backend = backend;
      products.push_back(testutil::distributed_product(
          a, x_global, 2, v, runtime_options, options));
    }
    for (std::size_t i = 0; i < products[0].size(); ++i) {
      EXPECT_NEAR(products[0][i], products[1][i], 1e-13)
          << "variant " << static_cast<int>(v) << " row " << i;
    }
  }
}

TEST(EngineBackend, SellChunkSigmaVariationsStayCorrect) {
  const CsrMatrix a = matgen::random_power_law(300, 4, 0.6, 8);
  for (const auto& [chunk, sigma] : {std::pair{4, 4}, std::pair{8, 64},
                                     std::pair{16, 300}, std::pair{32, 1}}) {
    EngineOptions options;
    options.backend = LocalBackend::kSell;
    options.sell_chunk = chunk;
    options.sell_sigma = sigma;
    EXPECT_LT(backend_error(a, 3, 2, Variant::kTaskMode, options), 1e-12)
        << "chunk " << chunk << " sigma " << sigma;
  }
}

TEST(EngineBackend, ParseBackendRoundTrip) {
  EXPECT_EQ(parse_backend("csr"), LocalBackend::kCsr);
  EXPECT_EQ(parse_backend("crs"), LocalBackend::kCsr);
  EXPECT_EQ(parse_backend("sell"), LocalBackend::kSell);
  EXPECT_STREQ(backend_name(LocalBackend::kCsr), "csr");
  EXPECT_STREQ(backend_name(LocalBackend::kSell), "sell");
  EXPECT_EQ(parse_backend(backend_name(LocalBackend::kSell)),
            LocalBackend::kSell);
  EXPECT_THROW(parse_backend("ellpack"), std::invalid_argument);
}

TEST(EngineBackend, ParallelAndSerialGatherAgreeBitwise) {
  // The team-parallel send-buffer gather copies the same elements to the
  // same slots as the legacy serial loop — same bytes through either data
  // path, for every variant and both backends.
  const CsrMatrix a = matgen::random_sparse(500, 9, 31);
  const auto x_global =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), 13);
  minimpi::RuntimeOptions runtime_options;
  runtime_options.ranks = 3;
  for (const Variant v : {Variant::kVectorNoOverlap,
                          Variant::kVectorNaiveOverlap, Variant::kTaskMode}) {
    for (const LocalBackend backend :
         {LocalBackend::kCsr, LocalBackend::kSell}) {
      std::vector<std::vector<value_t>> products;
      for (const bool parallel_gather : {true, false}) {
        EngineOptions options;
        options.backend = backend;
        options.parallel_gather = parallel_gather;
        products.push_back(testutil::distributed_product(
            a, x_global, 3, v, runtime_options, options));
      }
      ASSERT_EQ(products[0].size(), products[1].size());
      for (std::size_t i = 0; i < products[0].size(); ++i) {
        ASSERT_EQ(products[0][i], products[1][i])
            << "variant " << static_cast<int>(v) << " backend "
            << backend_name(backend) << " row " << i;
      }
    }
  }
}

TEST(EngineBackend, FirstTouchOnOffAgreeBitwise) {
  // NUMA placement must be invisible to the arithmetic: placed clones of
  // the local blocks and placed vectors hold identical data.
  const CsrMatrix a = matgen::random_banded(400, 60, 8, 17);
  const auto x_global =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), 29);
  minimpi::RuntimeOptions runtime_options;
  runtime_options.ranks = 2;
  for (const Variant v : {Variant::kVectorNoOverlap, Variant::kTaskMode}) {
    for (const LocalBackend backend :
         {LocalBackend::kCsr, LocalBackend::kSell}) {
      std::vector<std::vector<value_t>> products;
      for (const bool first_touch : {true, false}) {
        EngineOptions options;
        options.backend = backend;
        options.first_touch = first_touch;
        products.push_back(testutil::distributed_product(
            a, x_global, 3, v, runtime_options, options));
      }
      for (std::size_t i = 0; i < products[0].size(); ++i) {
        ASSERT_EQ(products[0][i], products[1][i])
            << "variant " << static_cast<int>(v) << " backend "
            << backend_name(backend) << " row " << i;
      }
    }
  }
}

TEST(EngineBackend, CommVolumeCountersMatchThePlan) {
  // Timings' volume counters are plan-derived: across both ranks of a
  // 1D Laplacian cut in the middle, each rank sends and receives exactly
  // one element per spMVM (8 bytes, 1 message each way).
  const CsrMatrix a = matgen::laplacian1d(64);
  minimpi::run(2, [&](minimpi::Comm& comm) {
    const auto boundaries = spmv::partition_rows(
        a, comm.size(), spmv::PartitionStrategy::kBalancedRows);
    DistMatrix dist(comm, a, boundaries);
    SpmvEngine engine(dist, 2, Variant::kVectorNoOverlap);
    auto x = engine.make_vector();
    auto y = engine.make_vector();
    const auto t = engine.apply(x, y);
    EXPECT_EQ(t.halo_elements, 1);
    EXPECT_EQ(t.bytes_received, static_cast<std::int64_t>(sizeof(value_t)));
    EXPECT_EQ(t.bytes_sent, static_cast<std::int64_t>(sizeof(value_t)));
    EXPECT_EQ(t.messages, 2);  // one recv + one send
  });
}

TEST(EngineBackend, EmptyPartsToleratedWithSell) {
  // More parts than rows: some ranks own zero rows; the SELL kernel must
  // cope with an empty local matrix.
  const CsrMatrix a = matgen::laplacian1d(5);
  EngineOptions options;
  options.backend = LocalBackend::kSell;
  EXPECT_LT(backend_error(a, 8, 2, Variant::kVectorNoOverlap, options),
            1e-12);
}

}  // namespace
}  // namespace hspmv::spmv
