// Debug-mode write-range race detector for ThreadTeam phases.
//
// Task-mode SpMV distributes loops explicitly (no OpenMP worksharing), so
// nothing in the type system guarantees two workers never write the same
// output element, or that a rewritten schedule still covers every element.
// This checker makes both properties testable: each parallel phase declares
// its output domain, every member registers the element ranges it intends
// to write, and the check at the phase's closing barrier asserts the claims
// are pairwise disjoint across parties and cover the whole domain.
//
// Phases are keyed by name so overlapping pipelines work: task mode keeps
// a "gather" phase and a "compute" phase open simultaneously (workers claim
// compute rows while the gather claims await their barrier-side check).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "team/thread_team.hpp"

namespace hspmv::team {

/// What a phase's claim set got wrong.
enum class RangeViolation {
  kOverlap,  ///< two parties claimed intersecting write ranges (a race)
  kGap,      ///< part of the declared domain was claimed by nobody
};

[[nodiscard]] const char* range_violation_name(RangeViolation kind);

struct RangeDiagnostic {
  RangeViolation kind;
  std::string phase;    ///< name passed to begin_phase()
  std::string message;  ///< human-readable description with indices
};

struct RangeCheckOptions {
  /// Master switch; a default-constructed checker is inert and every call
  /// is a cheap no-op, so call sites need no #ifdefs.
  bool enabled = false;
  /// Invoked for every violation (under the checker mutex; keep it light).
  std::function<void(const RangeDiagnostic&)> on_diagnostic;
  /// Also print each violation to stderr (default on: a race found in a
  /// test run should be visible even if nobody installed a callback).
  bool log_to_stderr = true;
};

/// Recorder + validator for a team's parallel write phases. Thread-safe:
/// claim() is called concurrently by team members; begin_phase()/check()
/// are called by whichever thread owns the phase's enclosing barrier.
class WriteRangeChecker {
 public:
  WriteRangeChecker() = default;  // disabled
  explicit WriteRangeChecker(RangeCheckOptions options);

  [[nodiscard]] bool enabled() const { return options_.enabled; }

  /// Open (or reset) the named phase writing the index domain [0, extent).
  void begin_phase(const std::string& phase, std::int64_t extent);

  /// Register that team member `party` writes [begin, end) of `phase`'s
  /// domain. Empty ranges and claims on unopened phases are ignored.
  void claim(const std::string& phase, int party, std::int64_t begin,
             std::int64_t end);
  void claim(const std::string& phase, int party, const Range& range) {
    claim(phase, party, range.begin, range.end);
  }

  /// Validate `phase` at its closing barrier: claims must be pairwise
  /// disjoint across parties and jointly cover [0, extent). Closes the
  /// phase and returns the number of violations it contributed.
  std::size_t check(const std::string& phase);

  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] std::vector<RangeDiagnostic> diagnostics() const;

 private:
  struct Claim {
    int party;
    std::int64_t begin;
    std::int64_t end;
  };
  struct PhaseState {
    std::int64_t extent = 0;
    std::vector<Claim> claims;
  };

  void report_locked(RangeViolation kind, const std::string& phase,
                     std::string message);

  RangeCheckOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PhaseState> phases_;
  std::vector<RangeDiagnostic> diagnostics_;
};

}  // namespace hspmv::team
