#include "spmv/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "minimpi/fault.hpp"
#include "sparse/ell.hpp"
#include "sparse/kernels.hpp"
#include "spmv/autotune.hpp"
#include "util/timer.hpp"

namespace hspmv::spmv {

using sparse::index_t;
using sparse::value_t;

namespace {

/// Presents a ThreadTeam to the placement templates with member ids
/// shifted by `offset`, so party = id - offset: task mode's communication
/// thread maps to party -1 and idles while workers first-touch their
/// shares.
struct OffsetTeam {
  team::ThreadTeam& team;
  int offset;

  void execute(const std::function<void(int)>& body) {
    team.execute([&](int id) { body(id - offset); });
  }
};

/// CRS backend: contiguous nonzero-balanced row chunks — exactly the
/// engine's historical distribution. With a placement team, the three
/// CRS arrays are cloned first-touch: worker w's pages (its row range of
/// row_ptr, its entry range of col/val) are written by the thread that
/// later streams them, and the kernels run on the placed views.
class CsrLocalKernel final : public LocalKernel {
 public:
  CsrLocalKernel(const sparse::CsrMatrix& local, index_t local_cols,
                 int workers, team::ThreadTeam* place_team, int party_offset,
                 bool nnz_balanced)
      : local_cols_(local_cols),
        rows_(nnz_balanced
                  ? team::nnz_balanced_boundaries(local.row_ptr(), workers)
                  : team::uniform_boundaries(local.rows(), workers)) {
    if (place_team == nullptr) {
      view_ = sparse::view(local);  // DistMatrix outlives the engine
      return;
    }
    // Worker w streams entries [row_ptr[rows_[w]], row_ptr[rows_[w+1]]).
    std::vector<std::int64_t> entries(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      entries[i] = local.row_ptr()[static_cast<std::size_t>(rows_[i])];
    }
    OffsetTeam team{*place_team, party_offset};
    row_ptr_ = util::first_touch_vector<sparse::offset_t>(
        team, local.row_ptr(), rows_);
    col_ = util::first_touch_vector<index_t>(team, local.col_idx(), entries);
    val_ = util::first_touch_vector<value_t>(team, local.val(), entries);
    view_ = sparse::CsrView{row_ptr_, col_, val_};
  }

  void full(int worker, std::span<const value_t> x,
            std::span<value_t> y) const override {
    sparse::spmv_rows(view_, begin(worker), end(worker), x, y);
  }
  void local(int worker, std::span<const value_t> x,
             std::span<value_t> y) const override {
    sparse::spmv_local_rows(view_, local_cols_, begin(worker), end(worker),
                            x, y);
  }
  void nonlocal(int worker, std::span<const value_t> x,
                std::span<value_t> y) const override {
    sparse::spmv_nonlocal_rows(view_, local_cols_, begin(worker),
                               end(worker), x, y);
  }

  void full_block(int worker, int width, std::span<const value_t> x,
                  std::span<value_t> y) const override {
    sparse::spmm_rows(view_, width, begin(worker), end(worker), x, y);
  }
  void local_block(int worker, int width, std::span<const value_t> x,
                   std::span<value_t> y) const override {
    sparse::spmm_local_rows(view_, local_cols_, width, begin(worker),
                            end(worker), x, y);
  }
  void nonlocal_block(int worker, int width, std::span<const value_t> x,
                      std::span<value_t> y) const override {
    sparse::spmm_nonlocal_rows(view_, local_cols_, width, begin(worker),
                               end(worker), x, y);
  }

  [[nodiscard]] std::vector<std::int64_t> row_boundaries() const override {
    return rows_;
  }

 private:
  [[nodiscard]] index_t begin(int worker) const {
    return static_cast<index_t>(rows_[static_cast<std::size_t>(worker)]);
  }
  [[nodiscard]] index_t end(int worker) const {
    return static_cast<index_t>(rows_[static_cast<std::size_t>(worker) + 1]);
  }

  index_t local_cols_;
  std::vector<std::int64_t> rows_;
  // Placed clones of the CRS arrays (empty when running on the view of
  // the DistMatrix's storage).
  util::FirstTouchVector<sparse::offset_t> row_ptr_;
  util::FirstTouchVector<index_t> col_;
  util::FirstTouchVector<value_t> val_;
  sparse::CsrView view_;
};

/// SELL-C-sigma backend: contiguous slot-balanced chunk ranges. The SELL
/// kernels un-permute on the fly, so y is written in the engine's owned
/// row order — interchangeable with the CRS backend.
class SellLocalKernel final : public LocalKernel {
 public:
  SellLocalKernel(const sparse::CsrMatrix& local, index_t local_cols,
                  int workers, int chunk, int sigma,
                  team::ThreadTeam* place_team, int party_offset,
                  bool nnz_balanced)
      : matrix_(sparse::SellMatrix::from_csr(local, chunk, sigma)),
        local_cols_(local_cols),
        chunks_(nnz_balanced
                    ? team::nnz_balanced_boundaries(matrix_.chunk_offsets(),
                                                    workers)
                    : team::uniform_boundaries(matrix_.chunk_count(),
                                               workers)) {
    if (place_team != nullptr) {
      OffsetTeam team{*place_team, party_offset};
      matrix_.place_first_touch(chunks_, team);
    }
  }

  void full(int worker, std::span<const value_t> x,
            std::span<value_t> y) const override {
    matrix_.spmv_chunks(begin(worker), end(worker), x, y);
  }
  void local(int worker, std::span<const value_t> x,
             std::span<value_t> y) const override {
    matrix_.spmv_local_chunks(local_cols_, begin(worker), end(worker), x, y);
  }
  void nonlocal(int worker, std::span<const value_t> x,
                std::span<value_t> y) const override {
    matrix_.spmv_nonlocal_chunks(local_cols_, begin(worker), end(worker), x,
                                 y);
  }

  void full_block(int worker, int width, std::span<const value_t> x,
                  std::span<value_t> y) const override {
    matrix_.spmm_chunks(width, begin(worker), end(worker), x, y);
  }
  void local_block(int worker, int width, std::span<const value_t> x,
                   std::span<value_t> y) const override {
    matrix_.spmm_local_chunks(local_cols_, width, begin(worker), end(worker),
                              x, y);
  }
  void nonlocal_block(int worker, int width, std::span<const value_t> x,
                      std::span<value_t> y) const override {
    matrix_.spmm_nonlocal_chunks(local_cols_, width, begin(worker),
                                 end(worker), x, y);
  }

  [[nodiscard]] std::vector<std::int64_t> row_boundaries() const override {
    // Chunk boundaries scaled to rows, clamped at the ragged last chunk.
    std::vector<std::int64_t> rows(chunks_.size());
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      rows[i] = std::min<std::int64_t>(chunks_[i] * matrix_.chunk(),
                                       matrix_.rows());
    }
    return rows;
  }

  [[nodiscard]] std::vector<team::Range> write_ranges(
      int worker) const override {
    // The kernels un-permute on the fly: chunk-position p writes original
    // row permutation()[p]. A sigma window crossing a worker boundary
    // makes those rows non-contiguous, so coalesce the sorted row set
    // into maximal runs instead of assuming one range per worker.
    const auto perm = matrix_.permutation();
    const auto first = static_cast<std::int64_t>(
        chunks_[static_cast<std::size_t>(worker)] * matrix_.chunk());
    const auto last = std::min<std::int64_t>(
        chunks_[static_cast<std::size_t>(worker) + 1] * matrix_.chunk(),
        matrix_.rows());
    std::vector<std::int64_t> rows;
    rows.reserve(static_cast<std::size_t>(std::max<std::int64_t>(
        last - first, 0)));
    for (std::int64_t p = first; p < last; ++p) {
      rows.push_back(perm[static_cast<std::size_t>(p)]);
    }
    std::sort(rows.begin(), rows.end());
    std::vector<team::Range> ranges;
    for (const std::int64_t row : rows) {
      if (!ranges.empty() && ranges.back().end == row) {
        ++ranges.back().end;
      } else {
        ranges.push_back(team::Range{row, row + 1});
      }
    }
    return ranges;
  }

 private:
  [[nodiscard]] index_t begin(int worker) const {
    return static_cast<index_t>(chunks_[static_cast<std::size_t>(worker)]);
  }
  [[nodiscard]] index_t end(int worker) const {
    return static_cast<index_t>(chunks_[static_cast<std::size_t>(worker) + 1]);
  }

  sparse::SellMatrix matrix_;
  index_t local_cols_;
  std::vector<std::int64_t> chunks_;
};

}  // namespace

std::vector<team::Range> LocalKernel::write_ranges(int worker) const {
  const auto rows = row_boundaries();
  return {team::Range{rows[static_cast<std::size_t>(worker)],
                      rows[static_cast<std::size_t>(worker) + 1]}};
}

LocalBackend parse_backend(const std::string& name) {
  if (name == "csr" || name == "crs") return LocalBackend::kCsr;
  if (name == "sell") return LocalBackend::kSell;
  if (name == "auto") return LocalBackend::kAuto;
  throw std::invalid_argument("unknown kernel backend: " + name +
                              " (expected csr, sell, or auto)");
}

const char* backend_name(LocalBackend backend) {
  switch (backend) {
    case LocalBackend::kCsr:
      return "csr";
    case LocalBackend::kSell:
      return "sell";
    case LocalBackend::kAuto:
      return "auto";
  }
  return "?";
}

TuneMode parse_tune_mode(const std::string& name) {
  if (name == "off") return TuneMode::kOff;
  if (name == "cached") return TuneMode::kCached;
  if (name == "force") return TuneMode::kForce;
  throw std::invalid_argument("unknown tune mode: " + name +
                              " (expected off, cached, or force)");
}

const char* tune_mode_name(TuneMode mode) {
  switch (mode) {
    case TuneMode::kOff:
      return "off";
    case TuneMode::kCached:
      return "cached";
    case TuneMode::kForce:
      return "force";
  }
  return "?";
}

std::unique_ptr<LocalKernel> make_local_kernel(const DistMatrix& matrix,
                                               LocalBackend backend,
                                               int workers, int sell_chunk,
                                               int sell_sigma,
                                               team::ThreadTeam* place_team,
                                               int party_offset,
                                               bool nnz_balanced) {
  switch (backend) {
    case LocalBackend::kCsr:
      return std::make_unique<CsrLocalKernel>(matrix.local(),
                                              matrix.owned_rows(), workers,
                                              place_team, party_offset,
                                              nnz_balanced);
    case LocalBackend::kSell:
      return std::make_unique<SellLocalKernel>(matrix.local(),
                                               matrix.owned_rows(), workers,
                                               sell_chunk, sell_sigma,
                                               place_team, party_offset,
                                               nnz_balanced);
    case LocalBackend::kAuto:
      throw std::invalid_argument(
          "make_local_kernel: kAuto must be resolved to a concrete backend "
          "first (see spmv/autotune.hpp)");
  }
  throw std::logic_error("make_local_kernel: unknown backend");
}

Timings& Timings::operator+=(const Timings& other) {
  gather_s += other.gather_s;
  comm_s += other.comm_s;
  local_s += other.local_s;
  nonlocal_s += other.nonlocal_s;
  total_s += other.total_s;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  halo_elements += other.halo_elements;
  messages += other.messages;
  retries += other.retries;
  // Configuration fields: copy, don't sum — the accumulated timing keeps
  // the configuration of the applies it aggregates.
  backend = other.backend;
  sell_chunk = other.sell_chunk;
  sell_sigma = other.sell_sigma;
  rows_migrated = other.rows_migrated;
  rows_full_replication = other.rows_full_replication;
  return *this;
}

void SpmvEngine::set_trace(util::Timeline* trace, std::string lane_prefix) {
  trace_ = trace;
  trace_prefix_ = std::move(lane_prefix);
}

SpmvEngine::SpmvEngine(const DistMatrix& matrix, int threads, Variant variant,
                       EngineOptions options)
    : matrix_(&matrix),
      variant_(variant),
      options_(options),
      team_(threads),
      compute_threads_(variant == Variant::kTaskMode ? threads - 1 : threads),
      range_checker_(options.range_check) {
  if (variant == Variant::kTaskMode && threads < 2) {
    throw std::invalid_argument(
        "SpmvEngine: task mode needs a communication thread plus at least "
        "one worker");
  }
  rebuild(matrix);
}

void SpmvEngine::rebuild(const DistMatrix& matrix) {
  matrix_ = &matrix;
  if (options_.backend == LocalBackend::kAuto) {
    // Resolve the configuration for *this* local block (a rebuild after a
    // communicator shrink re-tunes: the block changed).
    AutotuneOptions tune_options;
    tune_options.threads = compute_threads_;
    tuned_ = resolve_tuned(matrix.local(), options_.tune,
                           options_.tuning_cache, tune_options);
  } else {
    tuned_ = TunedConfig{options_.backend, options_.sell_chunk,
                         options_.sell_sigma, options_.nnz_balanced};
  }
  const int party_offset = variant_ == Variant::kTaskMode ? 1 : 0;
  kernel_ = make_local_kernel(matrix, tuned_.backend, compute_threads_,
                              tuned_.sell_chunk, tuned_.sell_sigma,
                              options_.first_touch ? &team_ : nullptr,
                              party_offset, tuned_.nnz_balanced);
  const auto& plan = matrix.plan();
  gather_schedule_ = GatherSchedule(plan, team_.size());
  task_gather_schedule_ = GatherSchedule(plan, compute_threads_);
  place_send_buffers(send_buffers_, 1);
  // The blocked buffers belong to the old plan — drop them; the next
  // blocked apply re-places them lazily.
  block_send_buffers_.clear();
  block_width_ = 0;
}

std::vector<util::FirstTouchVector<value_t>>& SpmvEngine::buffers_for(
    int width) {
  return width == 1 ? send_buffers_ : block_send_buffers_;
}

void SpmvEngine::ensure_block_buffers(int width) {
  if (width == block_width_) return;
  place_send_buffers(block_send_buffers_, width);
  block_width_ = width;
}

void SpmvEngine::place_send_buffers(
    std::vector<util::FirstTouchVector<value_t>>& buffers, int width) {
  const auto& plan = matrix_->plan();
  const auto k = static_cast<std::int64_t>(width);
  buffers.clear();
  buffers.resize(plan.send_blocks.size());
  for (std::size_t s = 0; s < buffers.size(); ++s) {
    // FirstTouchVector: no stores yet, pages stay unmapped until touched.
    buffers[s].resize(plan.send_blocks[s].gather.size() *
                      static_cast<std::size_t>(width));
  }
  if (options_.first_touch) {
    // Touch each buffer page from the thread that will gather into it:
    // vector mode follows the full-team schedule, task mode the
    // workers-only schedule. The schedules stay in element units; value
    // offsets (claims included) scale by width.
    const auto offsets = send_block_offsets();
    range_checker_.begin_phase("first-touch send buffers",
                               offsets.back() * k);
    team_.execute([&](int id) {
      if (variant_ == Variant::kTaskMode) {
        if (id == 0) return;
        task_gather_schedule_.for_party(
            id - 1, [&](std::size_t s, std::int64_t begin, std::int64_t end) {
              range_checker_.claim("first-touch send buffers", id,
                                   (offsets[s] + begin) * k,
                                   (offsets[s] + end) * k);
              util::touch_pages(std::span<value_t>(buffers[s]), begin * k,
                                end * k);
            });
      } else if (options_.parallel_gather) {
        gather_schedule_.for_party(id, [&](std::size_t s, std::int64_t begin,
                                           std::int64_t end) {
          range_checker_.claim("first-touch send buffers", id,
                               (offsets[s] + begin) * k,
                               (offsets[s] + end) * k);
          util::touch_pages(std::span<value_t>(buffers[s]), begin * k,
                            end * k);
        });
      } else if (id == 0) {
        for (std::size_t s = 0; s < buffers.size(); ++s) {
          auto& buffer = buffers[s];
          range_checker_.claim("first-touch send buffers", id,
                               offsets[s] * k, offsets[s + 1] * k);
          util::touch_pages(std::span<value_t>(buffer), 0,
                            static_cast<std::int64_t>(buffer.size()));
        }
      }
    });
    range_checker_.check("first-touch send buffers");
  } else {
    // Match the historical zero-initialized buffers.
    for (auto& buffer : buffers) {
      std::fill(buffer.begin(), buffer.end(), 0.0);
    }
  }
}

std::vector<std::int64_t> SpmvEngine::send_block_offsets() const {
  const auto& blocks = matrix_->plan().send_blocks;
  std::vector<std::int64_t> offsets(blocks.size() + 1, 0);
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    offsets[s + 1] =
        offsets[s] + static_cast<std::int64_t>(blocks[s].gather.size());
  }
  return offsets;
}

void SpmvEngine::claim_kernel_writes(const std::string& phase, int worker) {
  for (const team::Range& range : kernel_->write_ranges(worker)) {
    range_checker_.claim(phase, worker, range);
  }
}

DistVector SpmvEngine::make_vector() {
  if (!options_.first_touch) return DistVector(*matrix_);
  const auto boundaries = kernel_->row_boundaries();
  if (range_checker_.enabled()) {
    // The first-touch fill partitions the owned rows by the same
    // boundaries the kernels use — validate that they really are a
    // partition before handing them to the parallel zero-fill.
    range_checker_.begin_phase("first-touch vector", matrix_->owned_rows());
    for (int w = 0; w < compute_threads_; ++w) {
      range_checker_.claim("first-touch vector", w,
                           boundaries[static_cast<std::size_t>(w)],
                           boundaries[static_cast<std::size_t>(w) + 1]);
    }
    range_checker_.check("first-touch vector");
  }
  return DistVector(*matrix_, team_, boundaries,
                    variant_ == Variant::kTaskMode ? 1 : 0);
}

MultiVector SpmvEngine::make_multi_vector(int width) {
  if (!options_.first_touch) return MultiVector(*matrix_, width);
  const auto boundaries = kernel_->row_boundaries();
  if (range_checker_.enabled()) {
    // Same row-space partition validation as make_vector — the blocked
    // fill scales the same boundaries by width.
    range_checker_.begin_phase("first-touch vector", matrix_->owned_rows());
    for (int w = 0; w < compute_threads_; ++w) {
      range_checker_.claim("first-touch vector", w,
                           boundaries[static_cast<std::size_t>(w)],
                           boundaries[static_cast<std::size_t>(w) + 1]);
    }
    range_checker_.check("first-touch vector");
  }
  return MultiVector(*matrix_, width, team_, boundaries,
                     variant_ == Variant::kTaskMode ? 1 : 0);
}

void SpmvEngine::post_recvs(const ApplyView& v,
                            std::vector<minimpi::Request>& requests) {
  const auto k = static_cast<std::size_t>(v.width);
  for (const RecvBlock& block : matrix_->plan().recv_blocks) {
    // A peer's halo run is contiguous even blocked: K values per element,
    // elements in halo order — one message, no unpack.
    requests.push_back(matrix_->comm().irecv(
        v.x_halo.subspan(static_cast<std::size_t>(block.halo_offset) * k,
                         static_cast<std::size_t>(block.count) * k),
        block.peer));
  }
}

void SpmvEngine::gather_block(const SendBlock& block,
                              std::span<const value_t> owned,
                              std::size_t slot, int width) {
  auto& buffer = buffers_for(width)[slot];
  const auto k = static_cast<std::size_t>(width);
  for (std::size_t i = 0; i < block.gather.size(); ++i) {
    const std::size_t src = static_cast<std::size_t>(block.gather[i]) * k;
    for (std::size_t q = 0; q < k; ++q) {
      buffer[i * k + q] = owned[src + q];
    }
  }
}

void SpmvEngine::post_sends(const ApplyView& v,
                            std::vector<minimpi::Request>& requests) {
  const auto& blocks = matrix_->plan().send_blocks;
  auto& buffers = buffers_for(v.width);
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    requests.push_back(matrix_->comm().isend(
        std::span<const value_t>(buffers[s].data(), buffers[s].size()),
        blocks[s].peer));
  }
}

void SpmvEngine::kernel_full(int worker, const ApplyView& v) const {
  if (v.width == 1) {
    kernel_->full(worker, v.x_full, v.y_owned);
  } else {
    kernel_->full_block(worker, v.width, v.x_full, v.y_owned);
  }
}

void SpmvEngine::kernel_local(int worker, const ApplyView& v) const {
  if (v.width == 1) {
    kernel_->local(worker, v.x_full, v.y_owned);
  } else {
    kernel_->local_block(worker, v.width, v.x_full, v.y_owned);
  }
}

void SpmvEngine::kernel_nonlocal(int worker, const ApplyView& v) const {
  if (v.width == 1) {
    kernel_->nonlocal(worker, v.x_full, v.y_owned);
  } else {
    kernel_->nonlocal_block(worker, v.width, v.x_full, v.y_owned);
  }
}

void SpmvEngine::repost_request(const ApplyView& v,
                                std::vector<minimpi::Request>& requests,
                                std::size_t index) {
  const auto& plan = matrix_->plan();
  const auto k = static_cast<std::size_t>(v.width);
  const std::size_t recv_count = plan.recv_blocks.size();
  if (index < recv_count) {
    const RecvBlock& block = plan.recv_blocks[index];
    requests[index] = matrix_->comm().irecv(
        v.x_halo.subspan(static_cast<std::size_t>(block.halo_offset) * k,
                         static_cast<std::size_t>(block.count) * k),
        block.peer);
  } else {
    const std::size_t s = index - recv_count;
    auto& buffers = buffers_for(v.width);
    requests[index] = matrix_->comm().isend(
        std::span<const value_t>(buffers[s].data(), buffers[s].size()),
        plan.send_blocks[s].peer);
  }
}

void SpmvEngine::wait_exchange(const ApplyView& v,
                               std::vector<minimpi::Request>& requests,
                               std::int64_t& retries) {
  const RetryPolicy& policy = options_.retry;
  if (!policy.enabled) {
    matrix_->comm().wait_all(requests);
    return;
  }
  // Poll each request individually so a transient fault identifies its
  // request: recvs (index < recv_count) repost the irecv into the same
  // halo subspan — a transiently dropped eager payload is then
  // redelivered by the transport — and rendezvous sends repost the
  // isend of the (unchanged) packed buffer. Permanent faults (dead rank,
  // revoked comm) rethrow for the shrink/rebuild recovery path.
  const auto start = std::chrono::steady_clock::now();
  std::vector<int> attempts(requests.size(), 1);
  std::vector<char> done(requests.size(), 0);
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].valid()) {
      ++remaining;
    } else {
      done[i] = 1;
    }
  }
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (done[i]) continue;
      try {
        if (matrix_->comm().test(requests[i])) {
          done[i] = 1;
          --remaining;
          progressed = true;
        }
      } catch (const minimpi::FaultError& fault) {
        if (fault.kind() != minimpi::FaultKind::kTransient) throw;
        if (attempts[i] >= policy.max_attempts) throw;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            policy.backoff_seconds(attempts[i], matrix_->comm().rank())));
        repost_request(v, requests, i);
        ++attempts[i];
        ++retries;
        progressed = true;
      }
    }
    if (policy.exchange_timeout_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() > policy.exchange_timeout_seconds) {
      throw minimpi::FaultError(
          minimpi::FaultKind::kTransient, -1, matrix_->comm().epoch(),
          "halo exchange exceeded its deadline of " +
              std::to_string(policy.exchange_timeout_seconds) + " s");
    }
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

SpmvEngine::TrafficEstimate SpmvEngine::traffic_estimate(int width) const {
  TrafficEstimate estimate;
  const auto& local = matrix_->local();
  const auto& plan = matrix_->plan();
  const auto nnz = static_cast<double>(local.nnz());
  const auto rows = static_cast<double>(local.rows());
  const auto k = static_cast<double>(width);
  // Streaming arrays: val (8 B) + col_idx (4 B) per nonzero, row_ptr
  // (8 B) per row — loaded once per blocked apply regardless of width
  // (the 6/K amortization of B_SpMM).
  estimate.matrix_bytes = nnz * 12.0 + rows * 8.0;
  // B loaded at least once (owned + halo), C write-allocate + evict —
  // per column.
  estimate.vector_bytes =
      (8.0 * (rows + static_cast<double>(plan.halo_count)) + 16.0 * rows) *
      k;
  if (variant_ != Variant::kVectorNoOverlap) {
    estimate.extra_c_bytes = 16.0 * rows * k;  // Eq. 2's second C sweep
  }
  estimate.comm_recv_bytes = 8.0 * static_cast<double>(plan.halo_count) * k;
  estimate.comm_send_bytes =
      8.0 * static_cast<double>(plan.send_elements()) * k;
  estimate.messages = static_cast<int>(plan.recv_blocks.size() +
                                       plan.send_blocks.size());
  return estimate;
}

Timings SpmvEngine::apply(DistVector& x, DistVector& y) {
  if (x.owned_size() != matrix_->owned_rows() ||
      y.owned_size() != matrix_->owned_rows()) {
    throw std::invalid_argument("SpmvEngine::apply: vector shape mismatch");
  }
  return apply_view(ApplyView{x.owned(), x.full(), x.halo(), y.owned(), 1});
}

Timings SpmvEngine::apply(MultiVector& x, MultiVector& y) {
  if (x.owned_size() != matrix_->owned_rows() ||
      y.owned_size() != matrix_->owned_rows()) {
    throw std::invalid_argument("SpmvEngine::apply: block shape mismatch");
  }
  if (x.width() != y.width()) {
    throw std::invalid_argument("SpmvEngine::apply: block width mismatch");
  }
  ensure_block_buffers(x.width());
  return apply_view(
      ApplyView{x.owned(), x.full(), x.halo(), y.owned(), x.width()});
}

Timings SpmvEngine::apply_view(const ApplyView& v) {
  Timings t;
  switch (variant_) {
    case Variant::kVectorNoOverlap:
      t = apply_vector(v, /*naive_overlap=*/false);
      break;
    case Variant::kVectorNaiveOverlap:
      t = apply_vector(v, /*naive_overlap=*/true);
      break;
    case Variant::kTaskMode:
      t = apply_task_mode(v);
      break;
    default:
      throw std::logic_error("SpmvEngine::apply: unknown variant");
  }
  // Communication volume is fixed by the plan (times the block width) —
  // attach the measured-side counters to every apply().
  const auto& plan = matrix_->plan();
  const auto k = static_cast<std::int64_t>(v.width);
  t.halo_elements = static_cast<std::int64_t>(plan.halo_count) * k;
  t.bytes_received =
      t.halo_elements * static_cast<std::int64_t>(sizeof(value_t));
  t.bytes_sent = static_cast<std::int64_t>(plan.send_elements()) * k *
                 static_cast<std::int64_t>(sizeof(value_t));
  t.messages = static_cast<std::int64_t>(plan.recv_blocks.size() +
                                         plan.send_blocks.size());
  // Report the resolved kernel configuration (what kAuto actually chose).
  t.backend = tuned_.backend;
  t.sell_chunk = tuned_.backend == LocalBackend::kSell ? tuned_.sell_chunk : 0;
  t.sell_sigma = tuned_.backend == LocalBackend::kSell ? tuned_.sell_sigma : 0;
  return t;
}

Timings SpmvEngine::apply_vector(const ApplyView& v, bool naive_overlap) {
  Timings t;
  util::Timer total;
  const auto& plan = matrix_->plan();
  const auto k = static_cast<std::int64_t>(v.width);
  auto& buffers = buffers_for(v.width);

  std::vector<minimpi::Request> requests;
  requests.reserve(plan.recv_blocks.size() + plan.send_blocks.size());
  post_recvs(v, requests);

  // Gather the send buffers "after the receive has been initiated,
  // potentially hiding the cost of copying" (Sect. 3.1). Team-parallel:
  // GatherSchedule splits the flattened element space evenly, so a
  // single dominant peer block spreads across threads instead of
  // serializing. gather_s is the max over participating threads (each
  // times its own share), matching task mode's semantics. Blocked
  // applies copy K contiguous values per element.
  const bool check_ranges = range_checker_.enabled();
  std::vector<std::int64_t> offsets;
  if (check_ranges) {
    offsets = send_block_offsets();
    range_checker_.begin_phase("gather", offsets.back() * k);
  }
  if (options_.parallel_gather) {
    const auto owned_span = v.x_owned;
    std::atomic<double> gather_max{0.0};
    team_.execute([&](int id) {
      if (gather_schedule_.elements_of(id) == 0) return;
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      gather_schedule_.for_party(
          id, [&](std::size_t s, std::int64_t begin, std::int64_t end) {
            if (check_ranges) {
              range_checker_.claim("gather", id, (offsets[s] + begin) * k,
                                   (offsets[s] + end) * k);
            }
            const index_t* __restrict gather =
                plan.send_blocks[s].gather.data();
            const value_t* __restrict owned = owned_span.data();
            value_t* __restrict buffer = buffers[s].data();
            for (std::int64_t i = begin; i < end; ++i) {
              const std::int64_t src = gather[i] * k;
              for (std::int64_t q = 0; q < k; ++q) {
                buffer[i * k + q] = owned[src + q];
              }
            }
          });
      team::atomic_fetch_max(gather_max, timer.seconds());
      if (trace_ != nullptr) {
        trace_->record(trace_prefix_ + "t" + std::to_string(id),
                       "gather (copy to send buffers)", trace_begin,
                       trace_->now(), 'g');
      }
    });
    t.gather_s = gather_max.load();
  } else {
    // Historical serial loop on thread 0, one block at a time.
    util::Timer timer;
    const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
    const auto owned_span = v.x_owned;
    for (std::size_t s = 0; s < plan.send_blocks.size(); ++s) {
      if (check_ranges) {
        range_checker_.claim("gather", 0, offsets[s] * k,
                             offsets[s + 1] * k);
      }
      gather_block(plan.send_blocks[s], owned_span, s, v.width);
    }
    t.gather_s = timer.seconds();
    if (trace_ != nullptr) {
      trace_->record(trace_prefix_ + "t0", "gather (copy to send buffers)",
                     trace_begin, trace_->now(), 'g');
    }
  }
  if (check_ranges) range_checker_.check("gather");
  post_sends(v, requests);

  const auto run_phase = [&](auto&& phase, const char* phase_label,
                             char glyph) {
    if (check_ranges) {
      range_checker_.begin_phase(phase_label,
                                 static_cast<std::int64_t>(
                                     matrix_->owned_rows()));
    }
    team_.execute([&](int id) {
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      if (check_ranges) claim_kernel_writes(phase_label, id);
      phase(id);
      if (trace_ != nullptr) {
        trace_->record(trace_prefix_ + "t" + std::to_string(id), phase_label,
                       trace_begin, trace_->now(), glyph);
      }
    });
    if (check_ranges) range_checker_.check(phase_label);
  };

  const auto traced_waitall = [&]() {
    util::Timer timer;
    const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
    wait_exchange(v, requests, t.retries);
    if (trace_ != nullptr) {
      trace_->record(trace_prefix_ + "t0", "MPI_Waitall", trace_begin,
                     trace_->now(), 'W');
    }
    return timer.seconds();
  };

  if (!naive_overlap) {
    // Fig. 4(a): finish communication, then one full kernel sweep.
    t.comm_s = traced_waitall();
    util::Timer timer;
    run_phase([&](int id) { kernel_full(id, v); }, "spMVM of all elements",
              '#');
    t.local_s = timer.seconds();
  } else {
    // Fig. 4(b): local part first — but with deferred progress nothing
    // moves until Waitall.
    {
      util::Timer timer;
      run_phase([&](int id) { kernel_local(id, v); },
                "spMVM: local elements", '#');
      t.local_s = timer.seconds();
    }
    t.comm_s = traced_waitall();
    util::Timer timer;
    run_phase([&](int id) { kernel_nonlocal(id, v); },
              "spMVM: non-local elements", 'n');
    t.nonlocal_s = timer.seconds();
  }
  t.total_s = total.seconds();
  return t;
}

Timings SpmvEngine::apply_task_mode(const ApplyView& v) {
  Timings t;
  util::Timer total;
  const auto& plan = matrix_->plan();
  const auto k = static_cast<std::int64_t>(v.width);
  auto& buffers = buffers_for(v.width);

  std::vector<minimpi::Request> requests;
  requests.reserve(plan.recv_blocks.size() + plan.send_blocks.size());
  post_recvs(v, requests);

  // Fig. 4(c): thread 0 is the communication thread. Workers gather the
  // send buffers, hit a barrier (comm thread included, so it may post the
  // sends), run the local kernel while the comm thread sits in Waitall,
  // hit the second barrier, then sweep the non-local elements.
  team::Barrier gather_done(team_.size());
  team::Barrier comm_done(team_.size());
  std::atomic<double> gather_seconds{0.0};
  std::atomic<double> local_seconds{0.0};
  const auto owned_span = v.x_owned;

  // Two phases are in flight at once: the gather claims are validated by
  // the comm thread right after the gather_done barrier, while the
  // compute claims accumulate until the whole fork/join ends (local and
  // non-local sweeps write the same rows, so one claim set covers both).
  const bool check_ranges = range_checker_.enabled();
  std::vector<std::int64_t> offsets;
  if (check_ranges) {
    offsets = send_block_offsets();
    range_checker_.begin_phase("gather", offsets.back() * k);
    range_checker_.begin_phase("task-mode compute",
                               static_cast<std::int64_t>(
                                   matrix_->owned_rows()));
  }

  team_.execute([&](int id) {
    const std::string lane = trace_prefix_ + "t" + std::to_string(id);
    if (id == 0) {
      gather_done.arrive_and_wait();
      if (check_ranges) range_checker_.check("gather");
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      // A failed halo exchange must not strand the workers at the
      // comm_done barrier: arrive first, rethrow after.
      std::exception_ptr comm_error;
      try {
        post_sends(v, requests);
        wait_exchange(v, requests, t.retries);
      } catch (...) {
        comm_error = std::current_exception();
      }
      t.comm_s = timer.seconds();
      if (trace_ != nullptr) {
        trace_->record(lane, "comm thread: MPI_Isend + MPI_Waitall",
                       trace_begin, trace_->now(), 'W');
      }
      comm_done.arrive_and_wait();
      if (comm_error) std::rethrow_exception(comm_error);
      // "One thread executes MPI calls only" — the communication thread
      // does not join the non-local sweep.
      return;
    }
    const int worker = id - 1;
    {
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      // Element-balanced gather over the workers (same schedule shape as
      // vector mode, minus the communication thread).
      task_gather_schedule_.for_party(
          worker, [&](std::size_t s, std::int64_t begin, std::int64_t end) {
            if (check_ranges) {
              range_checker_.claim("gather", worker,
                                   (offsets[s] + begin) * k,
                                   (offsets[s] + end) * k);
            }
            const index_t* __restrict gather =
                plan.send_blocks[s].gather.data();
            const value_t* __restrict owned = owned_span.data();
            value_t* __restrict buffer = buffers[s].data();
            for (std::int64_t i = begin; i < end; ++i) {
              const std::int64_t src = gather[i] * k;
              for (std::int64_t q = 0; q < k; ++q) {
                buffer[i * k + q] = owned[src + q];
              }
            }
          });
      if (trace_ != nullptr) {
        trace_->record(lane, "gather (copy to send buffers)", trace_begin,
                       trace_->now(), 'g');
      }
      team::atomic_fetch_max(gather_seconds, timer.seconds());
    }
    gather_done.arrive_and_wait();
    {
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      if (check_ranges) claim_kernel_writes("task-mode compute", worker);
      kernel_local(worker, v);
      if (trace_ != nullptr) {
        trace_->record(lane, "spMVM: local elements", trace_begin,
                       trace_->now(), '#');
      }
      team::atomic_fetch_max(local_seconds, timer.seconds());
    }
    comm_done.arrive_and_wait();
    {
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      kernel_nonlocal(worker, v);
      if (trace_ != nullptr) {
        trace_->record(lane, "spMVM: non-local elements", trace_begin,
                       trace_->now(), 'n');
      }
    }
  });

  if (check_ranges) range_checker_.check("task-mode compute");

  t.gather_s = gather_seconds.load();
  t.local_s = local_seconds.load();
  t.total_s = total.seconds();
  return t;
}

}  // namespace hspmv::spmv
