// Fault-tolerant solver infrastructure: buddy checkpointing and the
// recovery options/statistics shared by the resilient drivers.
//
// The recovery model (docs/resilience.md) is checkpoint/restart over
// shrinking communicators. Every K iterations each rank snapshots its
// owned vector slices plus the replicated scalar state, keeps the
// snapshot in memory, and replicates it to a buddy (rank+1 mod size) —
// so any single rank's state survives that rank. On a permanent fault
// the survivors shrink the communicator (ULFM-style), deterministically
// repartition, reassemble the last complete checkpoint from own + buddy
// snapshots (pulling a dead rank's slice from its buddy), roll the
// iteration back, and continue. Losing a buddy *pair* between two
// checkpoints loses a slice for good: restore throws
// CheckpointLostError and the driver gives up.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "solvers/cg.hpp"
#include "solvers/lanczos.hpp"
#include "spmv/engine.hpp"

namespace hspmv::solvers {

/// A planned permanent failure: kill world rank `rank` when it reaches
/// iteration `iteration` (CLI syntax "<rank>:<iteration>").
struct FailurePlan {
  int rank = -1;
  int iteration = 0;
};

/// Parse the CLI syntax "<rank>:<iteration>" (e.g. "2:7"). Throws
/// std::invalid_argument on malformed input or negative fields.
[[nodiscard]] FailurePlan parse_failure_plan(const std::string& spec);

/// A planned capacity expansion: when the driver reaches iteration
/// `iteration`, spawn `ranks` fresh ranks (Comm::spawn), incrementally
/// repartition onto the grown communicator, and continue. Each plan
/// fires at most once — a rollback through its iteration does not
/// re-trigger it (CLI syntax "<iteration>:+<ranks>").
struct GrowPlan {
  int iteration = 0;
  int ranks = 1;
  /// When true the grown membership restores the last complete
  /// checkpoint and rolls the iteration back (same protocol as failure
  /// recovery), so the continuation is bitwise a calm run at the new
  /// size from that checkpoint onward. When false the live recurrence
  /// state migrates across (migrate_vector) and the solve resumes at
  /// the same iteration — cheaper, but the post-grow dot products
  /// re-associate, so equivalence to a calm run is numerical only.
  bool rollback = false;
};

/// Parse the CLI syntax "<iteration>:+<ranks>" (e.g. "20:+2"); an "!"
/// suffix requests rollback mode ("20:+2!"). Throws
/// std::invalid_argument on malformed input or non-positive ranks.
[[nodiscard]] GrowPlan parse_grow_plan(const std::string& spec);

struct ResilientCgResult;
struct ResilientLanczosResult;

/// Knobs of the resilient drivers.
struct ResilienceOptions {
  /// Checkpoint every this many iterations (a bootstrap checkpoint at
  /// iteration 0 always happens). Larger: less overhead, more
  /// iterations lost per failure. Must be >= 1.
  int checkpoint_interval = 10;
  /// Permanent failures survived before the driver gives up and lets
  /// the FaultError escape.
  int max_recoveries = 8;
  /// Injected permanent failures (world ranks; fire once each).
  std::vector<FailurePlan> failures;
  /// Planned capacity expansions (fire once each, in order).
  std::vector<GrowPlan> grows;
  /// Invoked (on the joiner's thread) with each spawned rank's result
  /// when it finishes; null discards joiner results. The callback must
  /// stay valid until the founding ranks' drivers return.
  std::function<void(ResilientCgResult)> on_joiner_result;
  /// Same, for the resilient Lanczos driver.
  std::function<void(ResilientLanczosResult)> on_joiner_lanczos_result;
  /// Distributed-engine shape. `engine.retry` is the transient-fault
  /// policy of the halo exchange.
  spmv::Variant variant = spmv::Variant::kVectorNoOverlap;
  spmv::EngineOptions engine;
  int threads = 2;  ///< team size per rank (>= 2 for task mode)
};

/// What recovery cost, per rank.
struct RecoveryStats {
  int failures_recovered = 0;   ///< completed shrink+restore cycles
  int grows = 0;                ///< completed spawn+rebuild cycles
  int iterations_lost = 0;      ///< sum of rollback distances
  std::int64_t transient_retries = 0;  ///< halo-exchange reposts (Timings)
  /// Rows that actually travelled across all topology changes (shrinks
  /// and grows), versus what the pre-elastic full re-replication path
  /// would have touched (global rows per change). The incremental
  /// repartitioner keeps the former strictly below the latter whenever
  /// any row survives in place.
  std::int64_t rows_migrated = 0;
  std::int64_t rows_full_replication = 0;
  double recovery_seconds = 0.0;       ///< wall clock inside recovery
  double grow_seconds = 0.0;           ///< wall clock inside grow+resync
  /// False on a killed rank: its driver returns early with whatever
  /// partial result it had; only survivors carry the solution.
  bool survivor = true;
  int final_size = 0;  ///< communicator size at the end
};

/// A checkpoint slice that no survivor holds — the buddy pair died
/// within one checkpoint interval. Unrecoverable by design.
class CheckpointLostError : public minimpi::FaultError {
 public:
  CheckpointLostError(std::uint64_t epoch, const std::string& message)
      : minimpi::FaultError(minimpi::FaultKind::kPermanent, -1, epoch,
                            message) {}
};

/// In-memory buddy-checkpoint store (one per rank, lives in the rank's
/// driver). Holds the two latest committed generations of this rank's
/// snapshot and of its buddy's — the previous generation covers the
/// window where a failure interrupts a save round after some ranks
/// committed and before others did.
///
/// Every snapshot is stamped with the failure epoch of the communicator
/// it was saved under. The (rank+1) % size buddy mapping is only
/// meaningful within one topology: after a shrink or grow the same rank
/// numbers denote different members and different row slices, so
/// restore groups candidate generations by (epoch, iteration) — slices
/// from different topologies can never be stitched into one restored
/// state — and remap() re-replicates committed snapshots to the buddies
/// of the *new* topology.
class BuddyCheckpoint {
 public:
  /// Loosely collective over `comm`: snapshot `vectors` (owned slices of
  /// equal length starting at global row `row_begin`) plus `scalars`
  /// (replicated, identical on every rank), then exchange with the
  /// buddies ((rank+1) % size receives mine). The snapshot is stamped
  /// with comm.epoch(). Commits atomically: a FaultError during the
  /// exchange leaves the previous generations untouched.
  void save(const minimpi::Comm& comm, sparse::index_t row_begin,
            std::int64_t iteration,
            const std::vector<std::span<const sparse::value_t>>& vectors,
            std::span<const sparse::value_t> scalars);

  struct Restored {
    std::int64_t iteration = 0;
    /// Full global vectors, reassembled from the slices.
    std::vector<std::vector<sparse::value_t>> vectors;
    // HSPMV-CHECK-ALLOW(first-touch): checkpoint scalar block; cold metadata
    std::vector<sparse::value_t> scalars;
  };

  /// Collective over the current communicator (shrunk survivors or
  /// grown membership): gather every member's snapshots, pick the best
  /// (iteration, epoch) generation whose slices tile [0, global_rows)
  /// completely — newest iteration first, newest epoch breaking ties —
  /// and reassemble it. Slices from different epochs never mix: a
  /// generation saved before a topology change is restored whole or not
  /// at all. Also reseeds this store: the caller's new slice
  /// [row_begin, row_begin + local_rows) of the restored state becomes
  /// the sole committed snapshot (buddy replication happens at the
  /// caller's next save), so an interrupted recovery can restore again.
  /// Throws CheckpointLostError when no complete generation survives.
  [[nodiscard]] Restored restore_global(const minimpi::Comm& comm,
                                        sparse::index_t global_rows,
                                        sparse::index_t row_begin,
                                        sparse::index_t local_rows);

  /// Collective over the *new* communicator after a topology change
  /// that kept this rank's own slice (e.g. a grow that migrated state
  /// with migrate_vector instead of rolling back): re-exchange the
  /// committed own generations with the new (rank+1) % size buddies, so
  /// the single-rank-loss guarantee holds again under the new
  /// membership. The old buddy slots are discarded — they belong to a
  /// topology that no longer exists.
  void remap(const minimpi::Comm& comm);

 private:
  struct Snapshot {
    std::int64_t row_begin = 0;
    std::int64_t iteration = -1;  ///< -1: empty slot
    std::int64_t epoch = 0;       ///< comm.epoch() at save time
    // HSPMV-CHECK-ALLOW(first-touch): checkpoint slice storage; written and read by the calling thread
    std::vector<sparse::value_t> data;  ///< vectors * slice_len, packed
    // HSPMV-CHECK-ALLOW(first-touch): checkpoint scalar block; cold metadata
    std::vector<sparse::value_t> scalars;
    std::int64_t slice_len = 0;
    std::int64_t vector_count = 0;

    [[nodiscard]] bool empty() const { return iteration < 0; }
  };

  static void serialize(const Snapshot& snapshot,
                        std::vector<sparse::value_t>& out);
  static std::vector<Snapshot> parse_stream(
      std::span<const sparse::value_t> stream);

  Snapshot own_, buddy_, own_prev_, buddy_prev_;
};

// ---- resilient drivers ----
// Both run the standard iteration on a RecoverableSpmv operator, catch
// FaultError, shrink + rebuild + restore + roll back, and continue to
// convergence. A killed rank returns early with survivor == false.

struct ResilientCgResult {
  CgResult cg;
  RecoveryStats recovery;
  /// Replicated global solution (survivors; empty on a killed rank).
  // HSPMV-CHECK-ALLOW(first-touch): restored global vector on the recovery path; rebuilt engines re-place hot data
  std::vector<sparse::value_t> x;
};

/// Solve `global` x = b (b replicated, global.rows() entries) with
/// fault-tolerant distributed CG. Collective over `comm`.
ResilientCgResult resilient_cg(minimpi::Comm comm,
                               const sparse::CsrMatrix& global,
                               std::span<const sparse::value_t> b,
                               const ResilienceOptions& resilience = {},
                               const CgOptions& options = {});

struct ResilientLanczosResult {
  LanczosResult lanczos;
  RecoveryStats recovery;
};

/// Extremal eigenvalues of symmetric `global` with fault-tolerant
/// distributed Lanczos. The start vector is derived per global row from
/// options.seed, so it is independent of the partition (and of rank
/// failures). Collective over `comm`.
ResilientLanczosResult resilient_lanczos(
    minimpi::Comm comm, const sparse::CsrMatrix& global,
    const ResilienceOptions& resilience = {},
    const LanczosOptions& options = {});

}  // namespace hspmv::solvers
