// Row partitioning of a global matrix across processes.
//
// The paper distributes nonzeros (or alternatively rows) evenly across
// MPI processes (Sect. 3.1, footnote 2: "We use a balanced distribution
// of nonzeros across the MPI processes here"). Both strategies are
// provided; the ablation EXP-A2 compares them.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::spmv {

enum class PartitionStrategy {
  kBalancedRows,      ///< equal row counts
  kBalancedNonzeros,  ///< equal nonzero counts (the paper's choice)
};

/// Contiguous row boundaries for `parts` partitions: parts+1 entries,
/// front() == 0, back() == a.rows(), nondecreasing.
std::vector<sparse::index_t> partition_rows(const sparse::CsrMatrix& a,
                                            int parts,
                                            PartitionStrategy strategy);

/// Per-part nonzero counts under the given boundaries.
std::vector<std::int64_t> partition_nnz(const sparse::CsrMatrix& a,
                                        std::span<const sparse::index_t>
                                            boundaries);

/// Load-imbalance factor (max/mean) of the per-part nonzero counts.
double partition_imbalance(const sparse::CsrMatrix& a,
                           std::span<const sparse::index_t> boundaries);

}  // namespace hspmv::spmv
