// Distributed sparse matrix: each rank owns a contiguous row block and
// the halo-exchange plan for its RHS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"
#include "spmv/comm_plan.hpp"

namespace hspmv::spmv {

class DistMatrix {
 public:
  /// Collective over `comm`: every rank extracts its row block
  /// [boundaries[rank], boundaries[rank+1]) from the (replicated) global
  /// matrix, builds its receive plan, and exchanges halo id lists with an
  /// alltoallv to learn its send lists — the "bookkeeping done only once"
  /// of Sect. 3.1. boundaries must have comm.size()+1 entries.
  DistMatrix(minimpi::Comm comm, const sparse::CsrMatrix& global,
             std::span<const sparse::index_t> boundaries);

  /// Collective: build from an already-distributed local row block
  /// (global column indices; rows [boundaries[rank], boundaries[rank+1])).
  /// This is the truly distributed construction path — the global matrix
  /// never exists in one place; only the halo id lists travel.
  static DistMatrix from_local_block(
      minimpi::Comm comm, const sparse::CsrMatrix& local_block,
      std::span<const sparse::index_t> boundaries);

  [[nodiscard]] const minimpi::Comm& comm() const { return comm_; }
  /// Local row block, columns in the compacted [owned | halo] numbering.
  [[nodiscard]] const sparse::CsrMatrix& local() const { return local_.matrix; }
  [[nodiscard]] const CommPlan& plan() const { return local_.plan; }
  [[nodiscard]] sparse::index_t owned_rows() const {
    return local_.plan.local_rows;
  }
  [[nodiscard]] sparse::index_t halo_count() const {
    return local_.plan.halo_count;
  }
  [[nodiscard]] sparse::index_t row_begin() const { return row_begin_; }
  [[nodiscard]] sparse::index_t global_rows() const { return global_rows_; }
  [[nodiscard]] std::int64_t global_nnz() const { return global_nnz_; }
  /// Global column id of halo slot `h` (0-based into the halo segment).
  [[nodiscard]] sparse::index_t halo_global(sparse::index_t h) const {
    return local_.halo_globals[static_cast<std::size_t>(h)];
  }

  /// Collective: sum of every rank's halo_count() — the measured
  /// counterpart of PartitionCommStats::total_halo_elements(), and the
  /// quantity an RCM pre-pass is meant to shrink.
  [[nodiscard]] std::int64_t total_halo_elements() const;

 private:
  DistMatrix() = default;

  /// Shared tail of both construction paths: build the receive plan from
  /// the local block and exchange halo id lists for the send lists.
  void init_from_block(const sparse::CsrMatrix& block,
                       std::span<const sparse::index_t> boundaries);

  minimpi::Comm comm_;
  sparse::index_t row_begin_ = 0;
  sparse::index_t global_rows_ = 0;
  std::int64_t global_nnz_ = 0;
  LocalPlan local_;
};

}  // namespace hspmv::spmv
