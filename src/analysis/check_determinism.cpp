// determinism-policy: floating-point accumulation on kernel/solver paths
// must go through the pinned-order helpers, and raw SIMD intrinsics must
// stay inside the portability shim.
//
// Bitwise reproducibility across runs, thread counts, and recoveries is
// a certified property of this repo (the chaos bitwise-stability sweeps,
// the SIMD ulp policy of docs/performance.md, resilient solvers that
// re-converge bitwise-identically). That only holds because every
// reduction runs in a pinned order: row_dot / row_dot_strided for kernel
// rows, vreduce for SIMD lane sums, sparse::dot for solver dots. An
// ad-hoc `sum += ...` loop or std::accumulate introduces an unpinned
// order the certification never sees; a raw _mm*/Neon intrinsic outside
// util/simd.hpp dodges both the shim's lane policy and its scalar
// fallback.
#include <set>

#include "analysis/registry.hpp"
#include "analysis/support.hpp"

namespace hspmv::analysis {

namespace {

using support::is_ident;
using support::is_kw;
using support::is_punct;

/// Functions allowed to contain scalar FP accumulation loops: they ARE
/// the pinned order (or reductions over rank-invariant integers).
const std::set<std::string>& pinned_helpers() {
  static const std::set<std::string> kNames = {
      "row_dot", "row_dot_strided", "vreduce", "dot", "norm2",
      "apply_op"};
  return kNames;
}

bool is_simd_intrinsic(const std::string& name) {
  if (name.rfind("_mm", 0) == 0) return true;     // _mm*, _mm256_*, _mm512_*
  if (name.rfind("__m", 0) == 0) return true;     // __m128d, __m256d, ...
  static const char* const kNeonPrefixes[] = {
      "vld1q", "vst1q", "vfmaq", "vaddq", "vmulq", "vdupq",
      "vgetq", "vsetq", "vpaddd", "vpadds", "vcombine", "vget_"};
  for (const char* p : kNeonPrefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return name.rfind("float64x", 0) == 0 || name.rfind("uint64x", 0) == 0;
}

class DeterminismPolicyCheck final : public Check {
 public:
  [[nodiscard]] std::string id() const override {
    return "determinism-policy";
  }
  [[nodiscard]] std::string description() const override {
    return "ad-hoc FP reduction (std::accumulate / scalar += loop) "
           "outside the pinned helpers, or raw SIMD intrinsics outside "
           "util/simd.hpp";
  }
  [[nodiscard]] std::string mirrors() const override {
    return "chaos bitwise-stability sweeps + SIMD ulp policy "
           "(tests/spmv/test_engine_chaos.cpp, "
           "tests/sparse/test_simd_kernels.cpp)";
  }
  [[nodiscard]] bool applies(const std::string& path) const override {
    if (is_fixture_path(path)) return true;
    if (path == "src/util/simd.hpp") return false;  // the shim itself
    return path_starts_with_any(path, {"src/"});
  }

  void run(const FileModel& m,
           std::vector<Finding>& findings) const override {
    scan_intrinsics(m, findings);
    if (path_starts_with_any(
            m.path, {"src/sparse/", "src/spmv/", "src/solvers/"}) ||
        is_fixture_path(m.path)) {
      scan_accumulate(m, findings);
      scan_reduction_loops(m, findings);
    }
  }

 private:
  void scan_intrinsics(const FileModel& m,
                       std::vector<Finding>& findings) const {
    for (std::size_t i = 0; i < m.toks.size(); ++i) {
      const Token& t = m.toks[i];
      if (t.kind == Tok::kIdent && !t.keyword &&
          is_simd_intrinsic(t.text)) {
        findings.push_back(Finding{
            id(), m.path, t.line,
            "raw SIMD intrinsic '" + t.text +
                "' outside util/simd.hpp: kernel vector paths must go "
                "through the portability shim so the lane count, masking "
                "and vreduce order stay policy-controlled",
            false, "", false});
        // One finding per line is enough.
        while (i + 1 < m.toks.size() && m.toks[i + 1].line == t.line) ++i;
      }
    }
  }

  void scan_accumulate(const FileModel& m,
                       std::vector<Finding>& findings) const {
    for (std::size_t i = 2; i < m.toks.size(); ++i) {
      if (is_ident(m.toks[i], "accumulate") &&
          is_punct(m.toks[i - 1], "::") && is_ident(m.toks[i - 2], "std")) {
        findings.push_back(Finding{
            id(), m.path, m.toks[i].line,
            "std::accumulate on a kernel/solver path: its left-fold "
            "order is not the pinned accumulation order the bitwise "
            "certification covers — use sparse::dot / row_dot / vreduce",
            false, "", false});
      }
    }
  }

  /// `for (...) { acc += ...; }` where acc is a scalar double/value_t
  /// declared in the enclosing function — an unpinned reduction order.
  void scan_reduction_loops(const FileModel& m,
                            std::vector<Finding>& findings) const {
    for (const FunctionInfo& f : m.functions) {
      if (f.is_lambda) continue;
      if (pinned_helpers().count(f.name) != 0) continue;
      if (f.name.size() > 7 &&
          f.name.rfind("_scalar") == f.name.size() - 7) {
        continue;  // the pinned scalar reference kernels
      }
      const auto accumulators = scalar_fp_locals(m, f);
      if (accumulators.empty()) continue;
      for (const TokRange& loop : m.loop_bodies) {
        if (!f.body.contains(loop.begin)) continue;
        for (std::size_t i = loop.begin; i < loop.end; ++i) {
          const Token& t = m.toks[i];
          if (!is_ident(t) || accumulators.count(t.text) == 0) continue;
          if (i + 1 >= loop.end || !is_punct(m.toks[i + 1], "+=")) {
            continue;
          }
          const Token& prev = m.toks[i - 1];
          const bool stmt_start = is_punct(prev, ";") ||
                                  is_punct(prev, "{") ||
                                  is_punct(prev, "}") || is_punct(prev, ")");
          if (!stmt_start) continue;
          findings.push_back(Finding{
              id(), m.path, t.line,
              "scalar FP reduction '" + t.text +
                  " += ...' in a loop inside '" + f.name +
                  "': an ad-hoc accumulation order the bitwise "
                  "certification never sees — use the pinned helpers "
                  "(sparse::dot, row_dot, vreduce) or justify why the "
                  "order is fixed",
              false, "", false});
        }
      }
    }
  }

  /// Scalar double/value_t locals of `f` (candidate accumulators).
  std::set<std::string> scalar_fp_locals(const FileModel& m,
                                         const FunctionInfo& f) const {
    std::set<std::string> names;
    for (std::size_t i = f.body.begin; i + 1 < f.body.end; ++i) {
      const Token& t = m.toks[i];
      if (!is_kw(t, "double") && !is_ident(t, "value_t")) continue;
      // `double x` — exclude pointers/refs/arrays and casts.
      const Token& next = m.toks[i + 1];
      if (!is_ident(next)) continue;
      const Token& after = m.toks[i + 2];
      if (is_punct(after, "=") || is_punct(after, ";") ||
          is_punct(after, "{")) {
        names.insert(next.text);
      }
    }
    return names;
  }
};

}  // namespace

std::unique_ptr<Check> make_determinism_policy_check() {
  return std::make_unique<DeterminismPolicyCheck>();
}

}  // namespace hspmv::analysis
