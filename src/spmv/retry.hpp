// Retry policy for the halo exchange — the transient-fault half of the
// fault-tolerant execution layer (docs/resilience.md).
//
// A transient fault (dropped transfer, chaos-injected link error) fails
// the affected request with FaultError{kTransient} but leaves the rank
// and the runtime healthy: reposting the same irecv/isend succeeds, and
// an eagerly-buffered payload is even redelivered by the transport. The
// policy bounds how often one exchange reposts (max_attempts), spaces the
// attempts with exponential backoff plus deterministic per-(seed,
// attempt, rank) jitter — identical runs retry at identical times, so
// retried results stay bitwise-reproducible — and caps the whole
// exchange with a deadline. Permanent faults (a dead rank, a revoked
// communicator) are never retried; they escalate to the caller, whose
// recovery path is shrink + rebuild + restore.
#pragma once

#include <cstdint>
#include <string>

namespace hspmv::spmv {

struct RetryPolicy {
  /// Master switch. Off: the engine waits exactly as before (one
  /// wait_all, any fault escalates immediately).
  bool enabled = false;
  /// Total posts of one request, the initial one included: 4 means up to
  /// 3 reposts before the transient fault escalates as-is.
  int max_attempts = 4;
  /// Backoff before repost k (k = 1 is the first retry):
  /// min(base * multiplier^(k-1), max) + jitter.
  double base_backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
  /// Deterministic jitter in [0, base) mixed from (jitter_seed, attempt,
  /// rank) — decorrelates the ranks' retry storms without a random
  /// source.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Deadline on one whole exchange (all requests, retries included).
  /// Exceeding it throws FaultError{kTransient}. 0 disables.
  double exchange_timeout_seconds = 0.0;

  /// Sleep before repost `attempt` (>= 1) on `rank`.
  [[nodiscard]] double backoff_seconds(int attempt, int rank) const;

  /// Parse "off" | "on" | a comma-separated key=value list over keys
  /// attempts, base, multiplier, max, timeout, seed (e.g.
  /// "attempts=6,base=1e-5,timeout=2"). Any key list implies enabled.
  /// Throws std::invalid_argument on unknown keys or malformed values.
  static RetryPolicy parse(const std::string& spec);
};

}  // namespace hspmv::spmv
