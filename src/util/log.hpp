// Minimal leveled logger for the hspmv toolkit.
//
// Logging in an HPC library must be cheap when disabled and must never
// interleave partial lines from concurrent threads. Messages are formatted
// into a local buffer and written to stderr with a single call.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace hspmv::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold. Messages below this level are discarded.
/// Initialized from the HSPMV_LOG environment variable
/// (trace|debug|info|warn|error|off); defaults to kWarn so tests and
/// benchmarks stay quiet unless asked.
LogLevel log_threshold() noexcept;

/// Override the threshold programmatically (e.g. from --verbose flags).
void set_log_threshold(LogLevel level) noexcept;

/// Human-readable name of a level ("INFO", ...).
const char* log_level_name(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, const std::string& message);
}  // namespace detail

/// Stream-style log statement: LOG_AT(LogLevel::kInfo) << "x = " << x;
/// The right-hand side is only evaluated when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hspmv::util

#define HSPMV_LOG(level)                                  \
  if (static_cast<int>(level) <                           \
      static_cast<int>(::hspmv::util::log_threshold())) { \
  } else                                                  \
    ::hspmv::util::LogLine(level)

#define HSPMV_TRACE HSPMV_LOG(::hspmv::util::LogLevel::kTrace)
#define HSPMV_DEBUG HSPMV_LOG(::hspmv::util::LogLevel::kDebug)
#define HSPMV_INFO HSPMV_LOG(::hspmv::util::LogLevel::kInfo)
#define HSPMV_WARN HSPMV_LOG(::hspmv::util::LogLevel::kWarn)
#define HSPMV_ERROR HSPMV_LOG(::hspmv::util::LogLevel::kError)
