// hspmv-check driver: file discovery (roots and/or compile_commands.json),
// parse via the default frontend, run every registered check, apply
// inline suppressions and the committed baseline, and aggregate a Report.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace hspmv::analysis {

struct AnalysisOptions {
  /// Directories (scanned recursively for .hpp/.cpp/.h/.cc) or single
  /// files. Paths may be absolute or relative to the working directory.
  std::vector<std::string> roots;
  /// Prefix stripped from paths for display/baseline keys (with its
  /// trailing '/'); typically the repo root.
  std::string repo_root;
  /// Optional compile_commands.json: its translation units (plus the
  /// headers found under `roots`) form the file set — the preferred
  /// invocation, mirroring clang tooling.
  std::string compile_commands;
  /// Optional committed baseline file (report.hpp).
  std::string baseline_path;
  /// Restrict to these check ids (empty = all).
  std::vector<std::string> only_checks;
};

struct AnalysisResult {
  Report report;
  /// Source text of each finding's line, parallel to report.findings
  /// (baseline fingerprint input).
  std::vector<std::string> finding_lines;
};

/// Returns the discovered file list (absolute/as-given paths), sorted.
std::vector<std::string> discover_files(const AnalysisOptions& options);

AnalysisResult run_analysis(const AnalysisOptions& options);

}  // namespace hspmv::analysis
