#include "matgen/random_matrix.hpp"

#include <gtest/gtest.h>

#include "sparse/stats.hpp"

namespace hspmv::matgen {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;

TEST(RandomSparse, HasDiagonalAndBoundedRowLength) {
  const CsrMatrix a = random_sparse(200, 8, 1);
  const auto s = sparse::compute_stats(a);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_LE(s.nnz_per_row_max, 8);
  EXPECT_GE(s.nnz_per_row_min, 1);
  // Duplicates shave off a little, but the mean should be near the target.
  EXPECT_GT(s.nnz_per_row_mean, 6.0);
}

TEST(RandomSparse, DeterministicInSeed) {
  const CsrMatrix a = random_sparse(100, 5, 42);
  const CsrMatrix b = random_sparse(100, 5, 42);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.val().size(); ++k) {
    EXPECT_EQ(a.col_idx()[k], b.col_idx()[k]);
    EXPECT_DOUBLE_EQ(a.val()[k], b.val()[k]);
  }
  const CsrMatrix c = random_sparse(100, 5, 43);
  EXPECT_NE(std::vector<index_t>(a.col_idx().begin(), a.col_idx().end()),
            std::vector<index_t>(c.col_idx().begin(), c.col_idx().end()));
}

TEST(RandomSparse, InvalidParamsThrow) {
  EXPECT_THROW((void)random_sparse(0, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)random_sparse(5, 0, 1), std::invalid_argument);
}

TEST(RandomBanded, RespectsBandwidth) {
  const index_t bw = 10;
  const CsrMatrix a = random_banded(500, bw, 6, 2);
  EXPECT_LE(sparse::compute_stats(a).bandwidth, bw);
}

TEST(RandomBanded, ZeroBandwidthIsDiagonal) {
  const CsrMatrix a = random_banded(50, 0, 4, 3);
  EXPECT_EQ(sparse::compute_stats(a).bandwidth, 0);
  EXPECT_EQ(a.nnz(), 50);
}

TEST(RandomPowerLaw, FirstRowsAreHeavy) {
  const CsrMatrix a = random_power_law(1000, 4, 0.7, 4);
  const auto row_len = [&](index_t i) {
    return a.row_ptr()[static_cast<std::size_t>(i) + 1] -
           a.row_ptr()[static_cast<std::size_t>(i)];
  };
  EXPECT_GT(row_len(0), 10 * row_len(999));
  const auto s = sparse::compute_stats(a);
  EXPECT_GT(s.nnz_per_row_stddev, s.nnz_per_row_mean * 0.5)
      << "power-law should be strongly skewed";
}

TEST(RandomPowerLaw, DegreesClampedToN) {
  const CsrMatrix a = random_power_law(20, 10, 3.0, 5);
  EXPECT_LE(sparse::compute_stats(a).nnz_per_row_max, 20);
}

}  // namespace
}  // namespace hspmv::matgen
