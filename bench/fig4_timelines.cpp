// EXP-F4 — reproduces Fig. 4: timeline views of the three hybrid kernel
// versions. The paper draws schematics; we *measure* them — each panel is
// a Gantt chart of rank 0's team threads during one spMVM with synthetic
// network latency, under deferred (standard-MPI) progress.
//
// Expected shapes (the gather bar appears on every participating lane —
// the send-buffer copy is team-parallel since the locality PR):
//  (a) vector, no overlap:   [gather][== Waitall ==][ spMVM all ]
//  (b) vector, naive overlap:[gather][ spMVM local ][== Waitall ==][nonlocal]
//      (the Waitall bar stays as long as in (a): no actual overlap)
//  (c) task mode:            t0: [======== Isend+Waitall ========]
//                            t1: [gather][ spMVM local ].........[nonlocal]
//      (communication and local compute bars overlap in wall time)

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "matgen/random_matrix.hpp"
#include "minimpi/runtime.hpp"
#include "solvers/resilience.hpp"
#include "sparse/kernels.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/reorder.hpp"
#include "spmv/resilient.hpp"
#include "spmv/retry.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/timeline.hpp"
#include "util/timer.hpp"

namespace {

using namespace hspmv;

struct Panel {
  std::string rendered;
  spmv::Timings timings;  ///< rank 0's traced apply (volume counters)
};

Panel run_panel(const sparse::CsrMatrix& a, spmv::Variant variant,
                double latency, int threads,
                spmv::EngineOptions engine_options) {
  minimpi::RuntimeOptions options;
  options.ranks = 2;
  options.progress = minimpi::ProgressMode::kDeferred;
  options.latency_seconds = latency;
  util::Timeline timeline;
  Panel panel;
  std::mutex mutex;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    const auto boundaries = spmv::partition_rows(
        a, comm.size(), spmv::PartitionStrategy::kBalancedNonzeros);
    spmv::DistMatrix dist(comm, a, boundaries);
    spmv::SpmvEngine engine(dist, threads, variant, engine_options);
    auto x = engine.make_vector();
    auto y = engine.make_vector();
    util::Xoshiro256 rng(1);
    for (auto& v : x.owned()) v = rng.uniform(-1.0, 1.0);
    engine.apply(x, y);  // warm-up
    comm.barrier();
    if (comm.rank() == 0) {
      timeline.reset();
      engine.set_trace(&timeline, "rank0 ");
    }
    const auto t = engine.apply(x, y);
    comm.barrier();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      panel.rendered = timeline.render(68);
      panel.timings = t;
    }
  });
  return panel;
}

/// Recovery demo (--inject-failure): repeated applies through the
/// recoverable engine on 4 ranks; the victim dies mid-sequence, the
/// survivors shrink + rebuild and redo the interrupted apply. Reports
/// recovery wall clock, applies lost, and halo retries alongside the
/// panel timings.
void run_recovery_demo(const sparse::CsrMatrix& a, int threads,
                       spmv::EngineOptions engine_options,
                       const solvers::FailurePlan& plan) {
  constexpr int kRanks = 4;
  const int applies = plan.iteration + 3;
  if (plan.rank < 0 || plan.rank >= kRanks || plan.iteration >= applies) {
    std::printf("recovery demo: --inject-failure rank must be in [0, %d)\n",
                kRanks);
    return;
  }
  // Partition-independent input: entry i depends only on the global row,
  // so the recomputed apply after the rebuild targets the same product.
  std::vector<sparse::value_t> xg(static_cast<std::size_t>(a.cols()));
  util::Xoshiro256 rng(11);
  for (auto& v : xg) v = rng.uniform(-1.0, 1.0);
  std::vector<sparse::value_t> expected(static_cast<std::size_t>(a.rows()));
  sparse::spmv(a, xg, expected);

  std::atomic<long long> retries{0};
  std::mutex mutex;
  double recovery_seconds = 0.0;
  int applies_lost = 0;
  int final_size = 0;
  double max_error = -1.0;

  minimpi::RuntimeOptions options;
  options.ranks = kRanks;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    const int world_rank = comm.global_rank();
    spmv::RecoverableSpmv op(comm, a, threads,
                             spmv::Variant::kVectorNoOverlap, engine_options);
    auto fill = [&](spmv::DistVector& x) {
      const auto row_begin =
          static_cast<std::size_t>(op.matrix().row_begin());
      for (std::size_t i = 0; i < x.owned().size(); ++i) {
        x.owned()[i] = xg[row_begin + i];
      }
    };
    auto x = op.make_vector();
    auto y = op.make_vector();
    fill(x);
    double local_recovery = 0.0;
    int local_lost = 0;
    for (int it = 0; it < applies; ++it) {
      try {
        if (it == plan.iteration && world_rank == plan.rank) {
          op.comm().simulate_rank_failure();
        }
        const auto t = op.apply(x, y);
        retries.fetch_add(t.retries);
      } catch (const minimpi::FaultError& fault) {
        if (fault.kind() == minimpi::FaultKind::kTransient) throw;
        // HSPMV-CHECK-ALLOW(divergent-collective): the victim rank is dead to the protocol; survivors shrink and rebuild the communicator before their next collective
        if (fault.rank() == world_rank) return;  // the victim is done
        util::Timer timer;
        op.shrink_and_rebuild();
        x = op.make_vector();
        y = op.make_vector();
        fill(x);
        // Survivors observe the fault at different apply indices (one
        // mid-apply, one about to start the next); resume from the
        // earliest so every survivor performs the same number of
        // matching halo exchanges from here on.
        const int resume = static_cast<int>(op.comm().allreduce(
            static_cast<long long>(it), minimpi::ReduceOp::kMin));
        local_recovery += timer.seconds();
        local_lost += it - resume + 1;  // applies redone by this rank
        it = resume - 1;                // redo from `resume`
      }
    }
    const auto yg =
        op.comm().allgatherv(std::span<const sparse::value_t>(y.owned()));
    double error = 0.0;
    for (std::size_t i = 0; i < yg.size(); ++i) {
      error = std::max(error, std::abs(yg[i] - expected[i]));
    }
    std::lock_guard<std::mutex> lock(mutex);
    recovery_seconds = std::max(recovery_seconds, local_recovery);
    applies_lost = std::max(applies_lost, local_lost);
    final_size = op.comm().size();
    max_error = std::max(max_error, error);
  });

  std::printf(
      "recovery demo (%d ranks, kill rank %d at apply %d of %d):\n"
      "  recovered in %.2f ms, %d applies lost, %lld halo retries, final "
      "comm size %d, max |y - y*| = %.2e  %s\n\n",
      kRanks, plan.rank, plan.iteration, applies, recovery_seconds * 1e3,
      applies_lost, retries.load(), final_size, max_error,
      max_error < 1e-12 ? "OK" : "MISMATCH");
}

void print_panel(const char* heading, const Panel& panel) {
  std::printf("%s\n%s", heading, panel.rendered.c_str());
  std::printf(
      "rank 0 comm volume: %lld B sent, %lld B received (%lld halo "
      "elements, %lld messages, %lld retries)\n\n",
      static_cast<long long>(panel.timings.bytes_sent),
      static_cast<long long>(panel.timings.bytes_received),
      static_cast<long long>(panel.timings.halo_elements),
      static_cast<long long>(panel.timings.messages),
      static_cast<long long>(panel.timings.retries));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("fig4_timelines",
                      "Fig. 4 — measured timelines of the kernel variants");
  cli.add_option("rows", "80000", "matrix rows");
  cli.add_option("latency-ms", "8", "synthetic per-message latency");
  cli.add_option("threads", "3", "team threads per rank");
  cli.add_option("backend", "csr",
                 "node-level kernel backend: csr, sell (SELL-C-sigma), or "
                 "auto (per-matrix autotuner)");
  cli.add_option("tune", "cached",
                 "autotuner mode for --backend=auto: off (code-balance "
                 "model, no IO), cached (tune on miss), or force");
  cli.add_option("tuning-cache", "",
                 "tuning-cache file for --backend=auto (empty = default "
                 "path, see docs/performance.md)");
  cli.add_option("reorder", "none", "global pre-pass: none or rcm");
  cli.add_option("retry-policy", "off",
                 "halo-exchange retry policy: off, on, or key=value list "
                 "(attempts, base, multiplier, max, timeout, seed)");
  cli.add_option("inject-failure", "",
                 "append a recovery demo killing rank R at apply I "
                 "(\"R:I\"; docs/resilience.md)");
  if (!cli.parse(argc, argv)) return 1;

  const auto reorder = spmv::parse_reorder(cli.get_string("reorder"));
  const auto a =
      spmv::make_reordered_problem(
          matgen::random_banded(
              static_cast<sparse::index_t>(cli.get_int("rows")),
              static_cast<sparse::index_t>(cli.get_int("rows") / 10), 12, 7),
          reorder)
          .matrix;
  const double latency = cli.get_double("latency-ms") * 1e-3;
  const int threads = static_cast<int>(cli.get_int("threads"));
  spmv::EngineOptions engine_options;
  engine_options.backend = spmv::parse_backend(cli.get_string("backend"));
  engine_options.tune = spmv::parse_tune_mode(cli.get_string("tune"));
  engine_options.tuning_cache = cli.get_string("tuning-cache");
  engine_options.retry = spmv::RetryPolicy::parse(cli.get_string("retry-policy"));

  std::printf(
      "Fig. 4 — measured timelines (2 ranks, %d threads, deferred "
      "progress, %.1f ms message latency, %s kernel backend, reorder=%s; "
      "rank 0 shown)\n\n",
      threads, latency * 1e3, spmv::backend_name(engine_options.backend),
      spmv::reorder_name(reorder));

  print_panel("(a) vector mode, no overlap",
              run_panel(a, spmv::Variant::kVectorNoOverlap, latency, threads,
                        engine_options));
  print_panel("(b) vector mode, naive overlap — Waitall does not shrink",
              run_panel(a, spmv::Variant::kVectorNaiveOverlap, latency,
                        threads, engine_options));
  print_panel(
      "(c) task mode — t0's Waitall overlaps the workers' local spMVM",
      run_panel(a, spmv::Variant::kTaskMode, latency, threads,
                engine_options));
  const std::string inject = cli.get_string("inject-failure");
  if (!inject.empty()) {
    run_recovery_demo(a, threads, engine_options,
                      hspmv::solvers::parse_failure_plan(inject));
  }
  std::printf(
      "note: the *shapes* are the reproduction target. Absolute spans on "
      "an oversubscribed single-core host include scheduler delays (all "
      "ranks' threads share one CPU); bench/abl_progress provides the "
      "controlled wall-clock comparison.\n");
  return 0;
}
