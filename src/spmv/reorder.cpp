#include "spmv/reorder.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparse/rcm.hpp"

namespace hspmv::spmv {

using sparse::index_t;
using sparse::value_t;

Reorder parse_reorder(const std::string& name) {
  if (name == "none") return Reorder::kNone;
  if (name == "rcm") return Reorder::kRcm;
  throw std::invalid_argument("unknown reorder: " + name +
                              " (expected none or rcm)");
}

const char* reorder_name(Reorder reorder) {
  switch (reorder) {
    case Reorder::kNone:
      return "none";
    case Reorder::kRcm:
      return "rcm";
  }
  return "?";
}

std::vector<value_t> ReorderedProblem::to_reordered(
    std::span<const value_t> x) const {
  // HSPMV-CHECK-ALLOW(first-touch): permutation staging; sequential setup/teardown path
  std::vector<value_t> result(x.size());
  if (new_of.empty()) {
    std::copy(x.begin(), x.end(), result.begin());
    return result;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    result[static_cast<std::size_t>(new_of[i])] = x[i];
  }
  return result;
}

std::vector<value_t> ReorderedProblem::to_original(
    std::span<const value_t> y) const {
  // HSPMV-CHECK-ALLOW(first-touch): permutation staging; sequential setup/teardown path
  std::vector<value_t> result(y.size());
  if (new_of.empty()) {
    std::copy(y.begin(), y.end(), result.begin());
    return result;
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    result[i] = y[static_cast<std::size_t>(new_of[i])];
  }
  return result;
}

ReorderedProblem make_reordered_problem(const sparse::CsrMatrix& a,
                                        Reorder reorder) {
  ReorderedProblem problem;
  problem.reorder = reorder;
  switch (reorder) {
    case Reorder::kNone:
      problem.matrix = a;
      return problem;
    case Reorder::kRcm:
      problem.new_of = sparse::rcm_permutation(a);
      problem.matrix = a.permute_symmetric(problem.new_of);
      return problem;
  }
  throw std::logic_error("make_reordered_problem: unknown reorder");
}

}  // namespace hspmv::spmv
