// Shared driver for the strong-scaling figures (Figs. 5 and 6): runs the
// cluster model over the mapping x variant grid on the Westmere cluster,
// adds the best-Cray reference series, and prints tables, 50 %-efficiency
// markers and ASCII plots.
#pragma once

#include <string>

#include "common/paper_matrices.hpp"

namespace hspmv::bench {

struct ScalingFigureOptions {
  std::string figure_name;     // "Fig. 5" / "Fig. 6"
  int max_nodes = 32;
  bool include_cray = true;
};

void run_scaling_figure(const PaperMatrix& matrix,
                        const ScalingFigureOptions& options);

}  // namespace hspmv::bench
