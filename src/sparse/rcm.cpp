#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hspmv::sparse {
namespace {

/// Adjacency of the symmetrized pattern, self-loops removed.
struct Graph {
  std::vector<offset_t> ptr;
  std::vector<index_t> adj;

  [[nodiscard]] index_t degree(index_t v) const {
    return static_cast<index_t>(ptr[static_cast<std::size_t>(v) + 1] -
                                ptr[static_cast<std::size_t>(v)]);
  }
};

Graph symmetrized_graph(const CsrMatrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("rcm: matrix must be square");
  }
  const index_t n = a.rows();
  std::vector<std::vector<index_t>> lists(static_cast<std::size_t>(n));
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  for (index_t i = 0; i < n; ++i) {
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      if (i == j) continue;
      lists[static_cast<std::size_t>(i)].push_back(j);
      lists[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  Graph g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    auto& list = lists[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    g.ptr[static_cast<std::size_t>(v) + 1] =
        g.ptr[static_cast<std::size_t>(v)] +
        static_cast<offset_t>(list.size());
  }
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  for (index_t v = 0; v < n; ++v) {
    std::copy(lists[static_cast<std::size_t>(v)].begin(),
              lists[static_cast<std::size_t>(v)].end(),
              g.adj.begin() + static_cast<std::ptrdiff_t>(
                                  g.ptr[static_cast<std::size_t>(v)]));
  }
  return g;
}

/// BFS from `root`; returns (farthest vertex with minimal degree in the
/// last level, eccentricity). `level` is reused scratch (-1 = unvisited).
std::pair<index_t, index_t> bfs_farthest(const Graph& g, index_t root,
                                         std::vector<index_t>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<index_t> queue;
  queue.push(root);
  level[static_cast<std::size_t>(root)] = 0;
  index_t last_level = 0;
  std::vector<index_t> frontier{root};
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop();
    const index_t lv = level[static_cast<std::size_t>(v)];
    if (lv > last_level) {
      last_level = lv;
      frontier.clear();
    }
    if (lv == last_level) frontier.push_back(v);
    for (offset_t k = g.ptr[static_cast<std::size_t>(v)];
         k < g.ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t w = g.adj[static_cast<std::size_t>(k)];
      if (level[static_cast<std::size_t>(w)] == -1) {
        level[static_cast<std::size_t>(w)] = lv + 1;
        queue.push(w);
      }
    }
  }
  // Among last-level vertices pick the one with minimal degree — the
  // George-Liu tie-break for pseudo-peripheral candidates.
  index_t best = frontier.front();
  for (index_t v : frontier) {
    if (g.degree(v) < g.degree(best)) best = v;
  }
  return {best, last_level};
}

index_t pseudo_peripheral(const Graph& g, index_t start,
                          std::vector<index_t>& level) {
  index_t v = start;
  auto [u, ecc] = bfs_farthest(g, v, level);
  while (true) {
    auto [w, ecc2] = bfs_farthest(g, u, level);
    if (ecc2 <= ecc) return u;
    v = u;
    u = w;
    ecc = ecc2;
  }
}

}  // namespace

index_t pseudo_peripheral_vertex(const CsrMatrix& pattern, index_t start) {
  const Graph g = symmetrized_graph(pattern);
  std::vector<index_t> level(static_cast<std::size_t>(pattern.rows()), -1);
  return pseudo_peripheral(g, start, level);
}

std::vector<index_t> rcm_permutation(const CsrMatrix& a) {
  const Graph g = symmetrized_graph(a);
  const index_t n = a.rows();
  std::vector<index_t> order;  // Cuthill-McKee order: order[k] = old index
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  std::vector<index_t> neighbors;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const index_t root = pseudo_peripheral(g, seed, level);
    std::queue<index_t> queue;
    queue.push(root);
    visited[static_cast<std::size_t>(root)] = true;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop();
      order.push_back(v);
      neighbors.clear();
      for (offset_t k = g.ptr[static_cast<std::size_t>(v)];
           k < g.ptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const index_t w = g.adj[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          neighbors.push_back(w);
        }
      }
      // Cuthill-McKee visits unvisited neighbours in increasing degree.
      std::sort(neighbors.begin(), neighbors.end(),
                [&](index_t x, index_t y) {
                  const index_t dx = g.degree(x), dy = g.degree(y);
                  if (dx != dy) return dx < dy;
                  return x < y;
                });
      for (index_t w : neighbors) queue.push(w);
    }
  }

  // Reverse the order (the "R" in RCM) and convert to new_of[old].
  std::vector<index_t> new_of(static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < order.size(); ++k) {
    new_of[static_cast<std::size_t>(order[k])] =
        static_cast<index_t>(order.size() - 1 - k);
  }
  return new_of;
}

CsrMatrix rcm_reorder(const CsrMatrix& a) {
  const auto perm = rcm_permutation(a);
  return a.permute_symmetric(perm);
}

}  // namespace hspmv::sparse
