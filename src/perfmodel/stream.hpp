// STREAM-style bandwidth microbenchmarks (McCalpin), run for real on the
// host. The paper uses STREAM triad as the practical upper bandwidth
// limit against which spMVM bandwidth is judged (Fig. 3); we run the same
// kernels to calibrate the host-measured experiments.
#pragma once

#include <cstddef>

namespace hspmv::team {
class ThreadTeam;
}

namespace hspmv::perfmodel {

enum class StreamKernel {
  kCopy,   // c = a            (2 streams + write-allocate)
  kScale,  // b = s * c        (2 streams + write-allocate)
  kAdd,    // c = a + b        (3 streams + write-allocate)
  kTriad,  // a = b + s * c    (3 streams + write-allocate)
};

struct StreamResult {
  double best_bytes_per_second = 0.0;  ///< best repetition, nominal traffic
  double avg_bytes_per_second = 0.0;
  /// Nominal traffic scaled by the write-allocate factor the paper applies
  /// (x 4/3 for triad: 2 reads + 1 store + 1 write-allocate read).
  double effective_bytes_per_second = 0.0;
  std::size_t array_bytes = 0;
  int repetitions = 0;
};

struct StreamOptions {
  /// Elements per array; default ~ 10 MB/array, beyond any host LLC.
  std::size_t elements = 1u << 20;
  int repetitions = 10;
  int threads = 1;
};

/// Run one STREAM kernel; touches memory first (NUMA first-touch through
/// the team when threads > 1, matching the paper's placement strategy).
StreamResult run_stream(StreamKernel kernel, const StreamOptions& options);

/// Nominal bytes moved per element by a kernel (without write-allocate).
double stream_nominal_bytes_per_element(StreamKernel kernel);

/// Multiplicative write-allocate correction (e.g. 4/3 for triad/add, 3/2
/// for copy/scale).
double stream_write_allocate_factor(StreamKernel kernel);

}  // namespace hspmv::perfmodel
