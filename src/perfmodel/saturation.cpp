#include "perfmodel/saturation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hspmv::perfmodel {

SaturationCurve::SaturationCurve(double single, double gamma)
    : single_(single), gamma_(gamma) {
  if (single <= 0.0) {
    throw std::invalid_argument("SaturationCurve: single must be > 0");
  }
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("SaturationCurve: gamma must be in [0, 1]");
  }
}

double SaturationCurve::value(double cores) const {
  if (cores < 1.0) {
    throw std::invalid_argument("SaturationCurve: cores must be >= 1");
  }
  return single_ * cores / (1.0 + (cores - 1.0) * gamma_);
}

double SaturationCurve::saturated() const {
  if (gamma_ == 0.0) return std::numeric_limits<double>::infinity();
  return single_ / gamma_;
}

int SaturationCurve::cores_to_reach(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 0.999);
  const double target = saturated() * fraction;
  for (int t = 1; t <= 64; ++t) {
    if (value(t) >= target) return t;
  }
  return 64;
}

SaturationCurve SaturationCurve::fit(double single, int cores, double value) {
  if (cores < 2 || value <= 0.0) {
    throw std::invalid_argument("SaturationCurve::fit: need cores >= 2");
  }
  // value = single * t / (1 + (t-1) gamma)  =>
  // gamma = (single * t / value - 1) / (t - 1)
  const double t = cores;
  const double gamma = (single * t / value - 1.0) / (t - 1.0);
  return SaturationCurve(single, std::clamp(gamma, 0.0, 1.0));
}

}  // namespace hspmv::perfmodel
