#include "sparse/symmetric.hpp"

#include <gtest/gtest.h>

#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"
#include "sparse/kernels.hpp"
#include "team/thread_team.hpp"
#include "util/prng.hpp"

namespace hspmv::sparse {
namespace {

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<value_t> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(SymmetricCsr, StoresUpperTriangleOnly) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const auto s = SymmetricCsr::from_full(a);
  EXPECT_EQ(s.logical_nnz(), a.nnz());
  // 10 diagonal + 9 superdiagonal entries.
  EXPECT_EQ(s.stored_nnz(), 19);
  for (index_t i = 0; i < s.upper().rows(); ++i) {
    const auto [cols, vals] = s.upper().row(i);
    for (const index_t c : cols) EXPECT_GE(c, i);
  }
}

TEST(SymmetricCsr, RejectsNonSymmetric) {
  CooBuilder b(3, 3);
  b.add(0, 1, 1.0);  // no mirror
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  EXPECT_THROW((void)SymmetricCsr::from_full(CsrMatrix(3, 3, b.finish())),
               std::invalid_argument);
  // Structurally symmetric but numerically not.
  CooBuilder c(2, 2);
  c.add(0, 1, 1.0);
  c.add(1, 0, 2.0);
  EXPECT_THROW((void)SymmetricCsr::from_full(CsrMatrix(2, 2, c.finish())),
               std::invalid_argument);
}

TEST(SymmetricCsr, RejectsRectangular) {
  CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  EXPECT_THROW((void)SymmetricCsr::from_full(CsrMatrix(2, 3, b.finish())),
               std::invalid_argument);
}

TEST(SymmetricCsr, RoundTripToFull) {
  const CsrMatrix a = matgen::poisson5_2d(7, 7);
  const CsrMatrix back = SymmetricCsr::from_full(a).to_full();
  ASSERT_EQ(back.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(back.at(i, j), a.at(i, j));
    }
  }
}

TEST(SymmetricCsr, StorageNearlyHalved) {
  // Sect. 1.3.1: "the data transfer volume is then reduced by almost a
  // factor of two".
  const CsrMatrix a = matgen::poisson7({.nx = 12, .ny = 12, .nz = 12});
  const auto s = SymmetricCsr::from_full(a);
  EXPECT_LT(s.storage_ratio_vs_full(), 0.62);
  EXPECT_GT(s.storage_ratio_vs_full(), 0.45);
}

TEST(SymmetricSpmv, MatchesFullKernel) {
  const CsrMatrix a = matgen::poisson7({.nx = 8, .ny = 7, .nz = 6,
                                        .coefficient_jitter = 0.3,
                                        .seed = 5});
  const auto s = SymmetricCsr::from_full(a);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 1);
  std::vector<value_t> y_full(x.size()), y_sym(x.size(), 99.0);
  spmv(a, x, y_full);
  symmetric_spmv(s, x, y_sym);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y_sym[i], y_full[i], 1e-12);
  }
}

TEST(SymmetricSpmv, HolsteinHamiltonian) {
  matgen::HolsteinHubbardParams p;
  p.sites = 4;
  p.electrons_up = 2;
  p.electrons_down = 2;
  p.phonon_modes = 3;
  p.max_phonons = 3;
  const CsrMatrix h = matgen::holstein_hubbard(p);
  const auto s = SymmetricCsr::from_full(h);
  const auto x = random_vector(static_cast<std::size_t>(h.cols()), 2);
  std::vector<value_t> y_full(x.size()), y_sym(x.size());
  spmv(h, x, y_full);
  symmetric_spmv(s, x, y_sym);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y_sym[i], y_full[i], 1e-12);
  }
}

class SymmetricParallel : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricParallel, MatchesSequentialAcrossThreadCounts) {
  const int threads = GetParam();
  const CsrMatrix a = matgen::poisson7({.nx = 10, .ny = 9, .nz = 8,
                                        .coefficient_jitter = 0.2,
                                        .seed = 9});
  const auto s = SymmetricCsr::from_full(a);
  const auto x = random_vector(static_cast<std::size_t>(a.cols()), 3);
  std::vector<value_t> expected(x.size()), got(x.size(), -1.0);
  symmetric_spmv(s, x, expected);
  team::ThreadTeam team(threads);
  symmetric_spmv_parallel(s, x, got, team);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-12) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SymmetricParallel,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(SymmetricSpmv, DiagonalOnlyMatrix) {
  CooBuilder b(5, 5);
  for (index_t i = 0; i < 5; ++i) b.add(i, i, i + 1.0);
  const auto s = SymmetricCsr::from_full(CsrMatrix(5, 5, b.finish()));
  std::vector<value_t> x{1.0, 1.0, 1.0, 1.0, 1.0}, y(5);
  symmetric_spmv(s, x, y);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], i + 1.0);
  }
}

TEST(SymmetricSpmv, SizeMismatchThrows) {
  const auto s = SymmetricCsr::from_full(matgen::laplacian1d(6));
  std::vector<value_t> small_x(3), y(6);
  EXPECT_THROW(symmetric_spmv(s, small_x, y), std::invalid_argument);
  team::ThreadTeam team(2);
  EXPECT_THROW(symmetric_spmv_parallel(s, small_x, y, team),
               std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::sparse
