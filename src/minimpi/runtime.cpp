#include "minimpi/runtime.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace hspmv::minimpi {

RunStats run(const RuntimeOptions& options,
             const std::function<void(Comm&)>& rank_main) {
  if (options.ranks < 1) {
    throw std::invalid_argument("minimpi::run: ranks must be >= 1");
  }
  if (!rank_main) {
    throw std::invalid_argument("minimpi::run: null rank_main");
  }

  Board board(options);
  std::atomic<std::uint64_t> next_comm_id{1};

  auto world = std::make_shared<detail::CommState>();
  world->id = 0;
  world->size = options.ranks;
  world->board = &board;
  world->next_comm_id = &next_comm_id;
  world->global_of.resize(static_cast<std::size_t>(options.ranks));
  std::iota(world->global_of.begin(), world->global_of.end(), 0);
  world->slots = std::make_unique<detail::CollectiveSlots>(options.ranks);
  world->slots->injector = board.fault();
  world->slots->checker = board.checker();
  world->slots->comm_id = world->id;
  world->slots->global_of = &world->global_of;
  world->slots->watchdog_seconds = options.validate.watchdog_seconds;
  world->slots->board = &board;
  board.register_slots(world->slots.get());

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::thread progress_thread;
  if (options.progress == ProgressMode::kAsync) {
    progress_thread = std::thread([&board] { board.progress_thread_main(); });
  }

  // Same error discipline for founding ranks and spawned joiners: first
  // exception wins and poisons the board so peers unblock.
  const auto guarded = [&](int global_rank, const std::function<void()>& body) {
    try {
      body();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      HSPMV_WARN << "rank " << global_rank << " threw; aborting runtime";
      // Unblock peers stuck in point-to-point waits and collectives.
      board.shutdown();
      world->slots->abort();
    }
  };

  // Joiner threads created by Comm::spawn land here; run() joins them
  // below exactly like the founding ranks.
  std::mutex spawned_mutex;
  std::vector<std::thread> spawned;
  board.set_rank_launcher(
      [&](int global_rank, std::function<void()> body) {
        std::thread t([&guarded, global_rank, body = std::move(body)] {
          guarded(global_rank, body);
        });
        std::lock_guard<std::mutex> lock(spawned_mutex);
        spawned.push_back(std::move(t));
      });

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.ranks));
  for (int r = 0; r < options.ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      guarded(r, [&] { rank_main(comm); });
    });
  }
  for (auto& t : threads) t.join();

  // Joiners may themselves spawn; drain until no new threads appear.
  while (true) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(spawned_mutex);
      batch.swap(spawned);
    }
    if (batch.empty()) break;
    for (auto& t : batch) t.join();
  }

  // Leak/unmatched-send audit before shutdown, and only for clean runs:
  // requests abandoned because a rank threw are not user bugs.
  if (!first_error) board.finalize_validation();

  board.shutdown();
  if (progress_thread.joinable()) progress_thread.join();

  if (first_error) std::rethrow_exception(first_error);
  return board.stats();
}

RunStats run(int ranks, const std::function<void(Comm&)>& rank_main) {
  RuntimeOptions options;
  options.ranks = ranks;
  return run(options, rank_main);
}

}  // namespace hspmv::minimpi
