// Chebyshev-expansion methods on top of spMVM: kernel-polynomial-method
// (KPM) moments for spectral densities and Chebyshev time propagation —
// the "more recent methods based on polynomial expansion" of
// Sect. 1.3.1 (refs. [10], [11]). Both are spMVM-dominated, which is why
// the paper's kernel matters to them.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "solvers/operator.hpp"

namespace hspmv::solvers {

/// Affine spectral rescaling x -> (x - b) / a mapping [lo, hi] into
/// (-1, 1) with a safety margin epsilon.
struct SpectralWindow {
  double a = 1.0;
  double b = 0.0;

  static SpectralWindow from_bounds(double lo, double hi,
                                    double epsilon = 0.01);
  [[nodiscard]] double scale(double x) const { return (x - b) / a; }
  [[nodiscard]] double unscale(double x) const { return a * x + b; }
};

struct KpmOptions {
  int moments = 128;
  int random_vectors = 4;  ///< stochastic trace estimation
  std::uint64_t seed = 7;
};

/// Chebyshev moments mu_n = Tr T_n(H~) estimated with random vectors,
/// H~ the operator rescaled by `window`. Moments are normalized per site
/// (divided by the dimension).
std::vector<double> kpm_moments(const Operator& op,
                                const SpectralWindow& window,
                                const KpmOptions& options = {});

/// Jackson-kernel damping factors g_n for `n_moments` moments.
std::vector<double> jackson_kernel(int n_moments);

/// Reconstruct the density of states at `points` energies in the
/// *unscaled* spectrum from KPM moments (Jackson-damped series).
std::vector<double> kpm_density(const std::vector<double>& moments,
                                const SpectralWindow& window,
                                const std::vector<double>& energies);

struct PropagationOptions {
  double time = 1.0;       ///< evolve by exp(-i H t)
  int max_terms = 256;     ///< expansion order cap
  double tolerance = 1e-12;  ///< Bessel-coefficient truncation
};

/// Chebyshev time evolution: psi(t) = exp(-i H t) psi(0) for a symmetric
/// H rescaled by `window`. Complex state as separate real/imag arrays.
/// Returns the number of expansion terms used.
int chebyshev_propagate(const Operator& op, const SpectralWindow& window,
                        std::span<sparse::value_t> psi_real,
                        std::span<sparse::value_t> psi_imag,
                        const PropagationOptions& options = {});

}  // namespace hspmv::solvers
