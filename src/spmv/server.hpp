// spmv-as-a-service: a batching front-end over the blocked SpMM engine.
//
// Single-vector requests arrive on a bounded FIFO queue; the server
// coalesces them into K-wide MultiVector blocks (K = max_block, or
// fewer when the oldest request's max-wait deadline expires) and runs
// each block through one RecoverableSpmv::apply. Batching is the
// serving-side payoff of the B_SpMM(K) model: the matrix streams once
// per block, so per-request cost drops toward the vector floor while
// per-request latency is bounded by the deadline.
//
// serve() is collective: rank 0 owns the queue, assembles batches, and
// broadcasts them; every rank applies its row block; results gather
// back to rank 0, which records per-request latency. A rank death
// mid-batch follows the ULFM recovery path — survivors shrink +
// rebuild and replay the pending batch, so the queue still drains to
// completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "spmv/resilient.hpp"
#include "util/timer.hpp"

namespace hspmv::spmv {

/// One admitted request: a full global right-hand side and its
/// submission time on the queue's clock.
struct ServerRequest {
  std::uint64_t id = 0;
  // HSPMV-CHECK-ALLOW(first-touch): request payload owned by the submitting client thread
  std::vector<sparse::value_t> x;
  double submit_s = 0.0;
};

/// Bounded thread-safe FIFO that coalesces single-vector submissions
/// into blocks. Batch assembly is deterministic: requests leave in
/// submission order, a batch is exactly max_block requests unless the
/// oldest waiter's deadline expires (or the queue closes), in which
/// case whatever is queued leaves as a partial batch.
class BatchQueue {
 public:
  BatchQueue(std::size_t capacity, int max_block, double max_wait_s);

  /// Admit a request. Returns false — back-pressure — when the queue
  /// holds `capacity` requests or is closed; the caller keeps ownership
  /// of x in that case (it is not moved from).
  bool try_submit(std::uint64_t id, std::vector<sparse::value_t>& x);

  /// No further admissions; pending requests still drain. next_batch()
  /// returns empty once the queue is closed and drained.
  void close();

  /// Block until a batch is ready (see class comment), pop and return
  /// it. Empty result = closed and drained (shutdown).
  std::vector<ServerRequest> next_batch();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] int max_block() const { return max_block_; }
  [[nodiscard]] double max_wait_s() const { return max_wait_s_; }
  /// Seconds on the queue's latency clock (epoch = construction).
  [[nodiscard]] double now() const { return clock_.seconds(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<ServerRequest> queue_;
  util::Timer clock_;
  std::size_t capacity_;
  int max_block_;
  double max_wait_s_;
  bool closed_ = false;
};

/// One request's completion record (rank 0 only).
struct CompletedRequest {
  std::uint64_t id = 0;
  double submit_s = 0.0;
  double complete_s = 0.0;
  int batch_width = 0;  ///< K of the batch that served it
  /// The global result vector (only kept when ServerOptions::keep_results).
  // HSPMV-CHECK-ALLOW(first-touch): completed-result copy handed back to the client; report path
  std::vector<sparse::value_t> y;

  [[nodiscard]] double latency_s() const { return complete_s - submit_s; }
};

/// serve()'s outcome. Latency/throughput accounting is populated on
/// rank 0 (the queue owner); other ranks report only recovery counts.
struct ServerReport {
  std::vector<CompletedRequest> completed;
  std::vector<int> batch_widths;  ///< K of each served batch, in order
  std::int64_t rebuilds = 0;      ///< shrink + rebuild recoveries
  std::int64_t grows = 0;         ///< capacity expansions (grow())
  /// Rows that actually travelled across all topology changes this
  /// server saw (shrinks during serve() and grow() calls), versus what
  /// full re-replication would have touched (global rows per change).
  std::int64_t rows_migrated = 0;
  std::int64_t rows_full_replication = 0;

  [[nodiscard]] std::vector<double> latencies() const;
  /// Per-request latency percentile (q in [0, 100]), e.g. 50/95/99.
  [[nodiscard]] double latency_percentile(double q) const;
  /// Completed requests per second of serving wall-clock (first submit
  /// to last completion).
  [[nodiscard]] double throughput_rps() const;
};

struct ServerOptions {
  /// Keep each request's global result in its CompletedRequest (tests);
  /// off by default — a real server would hand results to the client.
  bool keep_results = false;
  /// Test seam: runs on every rank right before a batch's blocked
  /// apply, with the 0-based batch-attempt index. Resilience tests use
  /// it to kill a rank mid-batch (Comm::simulate_rank_failure throws,
  /// so the victim never reaches the apply).
  std::function<void(int batch_index, const minimpi::Comm& comm)>
      before_apply;
};

/// Collective batching driver over a RecoverableSpmv.
class SpmvServer {
 public:
  SpmvServer(minimpi::Comm comm, const sparse::CsrMatrix& global,
             int threads, Variant variant, EngineOptions engine_options = {},
             ServerOptions options = {});

  /// Joiner-side constructor: build a server on a rank spawned by an
  /// existing server's grow(). Enters the collective migrate/rebuild as
  /// a receiver; afterwards this server is interchangeable with the
  /// founders' (same partition, same engine shape) and must serve the
  /// same queues they do.
  SpmvServer(RecoverableSpmv::JoinerTag, minimpi::Comm grown,
             const sparse::CsrMatrix& global, int threads, Variant variant,
             EngineOptions engine_options = {}, ServerOptions options = {});

  /// Collective capacity expansion between serve() calls: spawn `extra`
  /// fresh ranks running `joiner_main` (which must construct a joiner
  /// SpmvServer and serve the same subsequent queues), incrementally
  /// repartition the matrix onto the grown communicator, and account the
  /// migration into this server's next report. Must not be called while
  /// a serve() is in flight.
  void grow(int extra,
            const std::function<void(minimpi::Comm&)>& joiner_main);

  /// Serve until `queue` closes and drains. Collective: every rank of
  /// the communicator must call this with the same queue object.
  /// Non-zero ranks never touch the queue. On a rank death the dead
  /// rank's FaultError propagates out of its serve(); survivors shrink,
  /// rebuild, and replay the pending batch.
  ServerReport serve(BatchQueue& queue);

  [[nodiscard]] RecoverableSpmv& spmv() { return spmv_; }

 private:
  /// Serve one batch. Returns false on the shutdown batch (width 0).
  bool serve_one(BatchQueue& queue, std::vector<ServerRequest>& pending,
                 int batch_index, ServerReport& report);

  RecoverableSpmv spmv_;
  ServerOptions options_;
  /// Topology changes made between serve() calls (grow()) fold into the
  /// next serve()'s report.
  std::int64_t pending_grows_ = 0;
  std::int64_t pending_rows_migrated_ = 0;
  std::int64_t pending_rows_full_replication_ = 0;
};

}  // namespace hspmv::spmv
