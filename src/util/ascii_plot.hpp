// ASCII line plots for the figure-reproduction harnesses.
//
// Renders a set of (x, y) series on a character grid with axis labels and a
// legend — enough to see the *shape* of a strong-scaling figure in a
// terminal.
#pragma once

#include <string>
#include <vector>

namespace hspmv::util {

struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

struct PlotOptions {
  int width = 72;   ///< interior columns of the plot area
  int height = 20;  ///< interior rows of the plot area
  std::string x_label = "x";
  std::string y_label = "y";
  bool y_from_zero = true;
};

/// Render series to a multi-line string. Series with mismatched x/y lengths
/// are truncated to the shorter of the two; empty series are skipped.
std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options);

}  // namespace hspmv::util
