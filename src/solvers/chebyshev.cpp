#include "solvers/chebyshev.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/prng.hpp"

namespace hspmv::solvers {

using sparse::value_t;

SpectralWindow SpectralWindow::from_bounds(double lo, double hi,
                                           double epsilon) {
  if (hi <= lo) {
    throw std::invalid_argument("SpectralWindow: hi must exceed lo");
  }
  SpectralWindow window;
  window.a = (hi - lo) / (2.0 - epsilon);
  window.b = (hi + lo) / 2.0;
  return window;
}

namespace {

/// y = (A x - b x) / a — one application of the rescaled operator.
void apply_scaled(const Operator& op, const SpectralWindow& window,
                  std::span<const value_t> x, std::span<value_t> y) {
  op.apply(x, y);
  const double inv_a = 1.0 / window.a;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = (y[i] - window.b * x[i]) * inv_a;
  }
}

}  // namespace

std::vector<double> kpm_moments(const Operator& op,
                                const SpectralWindow& window,
                                const KpmOptions& options) {
  if (!op.apply || !op.dot || op.local_size == 0) {
    throw std::invalid_argument("kpm_moments: incomplete operator");
  }
  if (options.moments < 2 || options.random_vectors < 1) {
    throw std::invalid_argument("kpm_moments: bad options");
  }
  const std::size_t n = op.local_size;
  // HSPMV-CHECK-ALLOW(first-touch): moment accumulator on the host; cold next to op.apply traffic
  std::vector<double> moments(static_cast<std::size_t>(options.moments),
                              0.0);
  util::Xoshiro256 rng(options.seed);

  // HSPMV-CHECK-ALLOW(first-touch): stochastic-estimator scratch; hot placement is owned by op.apply's engine
  std::vector<value_t> r(n), t0(n), t1(n), t2(n);
  for (int vec = 0; vec < options.random_vectors; ++vec) {
    // Rademacher vector: the standard stochastic trace estimator.
    for (auto& x : r) x = rng.uniform() < 0.5 ? -1.0 : 1.0;
    t0 = r;
    apply_scaled(op, window, t0, t1);
    moments[0] += op.dot(r, t0);
    moments[1] += op.dot(r, t1);
    for (int m = 2; m < options.moments; ++m) {
      apply_scaled(op, window, t1, t2);
      for (std::size_t i = 0; i < n; ++i) t2[i] = 2.0 * t2[i] - t0[i];
      moments[static_cast<std::size_t>(m)] += op.dot(r, t2);
      std::swap(t0, t1);
      std::swap(t1, t2);
    }
  }
  const double normalization =
      static_cast<double>(options.random_vectors) * static_cast<double>(n);
  for (auto& mu : moments) mu /= normalization;
  return moments;
}

std::vector<double> jackson_kernel(int n_moments) {
  if (n_moments < 1) {
    throw std::invalid_argument("jackson_kernel: n_moments must be >= 1");
  }
  // HSPMV-CHECK-ALLOW(first-touch): n_moments-sized kernel weight table; host-side
  std::vector<double> g(static_cast<std::size_t>(n_moments));
  const double big_n = n_moments + 1.0;
  const double phase = std::numbers::pi / big_n;
  for (int m = 0; m < n_moments; ++m) {
    g[static_cast<std::size_t>(m)] =
        ((big_n - m) * std::cos(m * phase) +
         std::sin(m * phase) / std::tan(phase)) /
        big_n;
  }
  return g;
}

std::vector<double> kpm_density(const std::vector<double>& moments,
                                const SpectralWindow& window,
                                const std::vector<double>& energies) {
  if (moments.empty()) {
    throw std::invalid_argument("kpm_density: no moments");
  }
  const auto g = jackson_kernel(static_cast<int>(moments.size()));
  // HSPMV-CHECK-ALLOW(first-touch): spectral density output; host-side post-processing
  std::vector<double> density;
  density.reserve(energies.size());
  for (const double energy : energies) {
    const double x = window.scale(energy);
    if (x <= -1.0 || x >= 1.0) {
      density.push_back(0.0);
      continue;
    }
    // Clenshaw-free direct sum: T_n(x) via the cosine form.
    const double theta = std::acos(x);
    double sum = g[0] * moments[0];
    for (std::size_t m = 1; m < moments.size(); ++m) {
      // HSPMV-CHECK-ALLOW(determinism-policy): host-side Chebyshev series in fixed ascending-moment order
      sum += 2.0 * g[m] * moments[m] *
             std::cos(static_cast<double>(m) * theta);
    }
    density.push_back(sum / (std::numbers::pi * std::sqrt(1.0 - x * x) *
                             window.a));
  }
  return density;
}

int chebyshev_propagate(const Operator& op, const SpectralWindow& window,
                        std::span<value_t> psi_real,
                        std::span<value_t> psi_imag,
                        const PropagationOptions& options) {
  if (!op.apply || op.local_size == 0) {
    throw std::invalid_argument("chebyshev_propagate: incomplete operator");
  }
  if (psi_real.size() != op.local_size ||
      psi_imag.size() != op.local_size) {
    throw std::invalid_argument("chebyshev_propagate: size mismatch");
  }
  const std::size_t n = op.local_size;
  const double tau = window.a * options.time;  // rescaled time

  // exp(-i H t) = e^{-i b t} sum_n c_n T_n(H~), c_n = (2 - d_n0) (-i)^n
  // J_n(tau).
  // HSPMV-CHECK-ALLOW(first-touch): propagation scratch; hot placement is owned by op.apply's engine
  std::vector<value_t> t0_r(psi_real.begin(), psi_real.end());
  // HSPMV-CHECK-ALLOW(first-touch): propagation scratch; hot placement is owned by op.apply's engine
  std::vector<value_t> t0_i(psi_imag.begin(), psi_imag.end());
  // HSPMV-CHECK-ALLOW(first-touch): propagation scratch; hot placement is owned by op.apply's engine
  std::vector<value_t> t1_r(n), t1_i(n), t2_r(n), t2_i(n);
  // HSPMV-CHECK-ALLOW(first-touch): propagation scratch; hot placement is owned by op.apply's engine
  std::vector<value_t> out_r(n, 0.0), out_i(n, 0.0);

  const auto accumulate = [&](int order, std::span<const value_t> vr,
                              std::span<const value_t> vi) {
    const double bessel = std::cyl_bessel_j(order, std::abs(tau));
    double coefficient = (order == 0 ? 1.0 : 2.0) * bessel;
    if (tau < 0.0 && (order % 2) == 1) coefficient = -coefficient;
    // (-i)^order cycles 1, -i, -1, i.
    switch (order % 4) {
      case 0:
        for (std::size_t i = 0; i < n; ++i) {
          out_r[i] += coefficient * vr[i];
          out_i[i] += coefficient * vi[i];
        }
        break;
      case 1:
        for (std::size_t i = 0; i < n; ++i) {
          out_r[i] += coefficient * vi[i];
          out_i[i] -= coefficient * vr[i];
        }
        break;
      case 2:
        for (std::size_t i = 0; i < n; ++i) {
          out_r[i] -= coefficient * vr[i];
          out_i[i] -= coefficient * vi[i];
        }
        break;
      default:
        for (std::size_t i = 0; i < n; ++i) {
          out_r[i] -= coefficient * vi[i];
          out_i[i] += coefficient * vr[i];
        }
        break;
    }
    return std::abs(bessel);
  };

  accumulate(0, t0_r, t0_i);
  apply_scaled(op, window, t0_r, t1_r);
  apply_scaled(op, window, t0_i, t1_i);
  accumulate(1, t1_r, t1_i);
  int terms = 2;
  for (; terms < options.max_terms; ++terms) {
    apply_scaled(op, window, t1_r, t2_r);
    apply_scaled(op, window, t1_i, t2_i);
    for (std::size_t i = 0; i < n; ++i) {
      t2_r[i] = 2.0 * t2_r[i] - t0_r[i];
      t2_i[i] = 2.0 * t2_i[i] - t0_i[i];
    }
    const double magnitude = accumulate(terms, t2_r, t2_i);
    std::swap(t0_r, t1_r);
    std::swap(t1_r, t2_r);
    std::swap(t0_i, t1_i);
    std::swap(t1_i, t2_i);
    if (magnitude < options.tolerance &&
        static_cast<double>(terms) > std::abs(tau)) {
      ++terms;
      break;
    }
  }

  // Global phase e^{-i b t}.
  const double phase = -window.b * options.time;
  const double c = std::cos(phase), s = std::sin(phase);
  for (std::size_t i = 0; i < n; ++i) {
    psi_real[i] = c * out_r[i] - s * out_i[i];
    psi_imag[i] = s * out_r[i] + c * out_i[i];
  }
  return terms;
}

}  // namespace hspmv::solvers
