// Interactive front-end to the cluster performance model: predict strong
// scaling of any generated matrix on the paper's machines for a chosen
// variant and hybrid mapping.
//
//   scaling_explorer --family hmep --variant task --mapping ld \
//                    --cluster westmere --nodes 64

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "common/paper_matrices.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("scaling_explorer",
                      "predict strong scaling with the cluster model");
  cli.add_option("family", "hmep", "matrix family: hmep | hmeP-alt | samg");
  cli.add_option("scale", "1", "instance scale level (0..3; 3 = full paper size)");
  cli.add_option("variant", "task",
                 "kernel variant: novl | naive | task");
  cli.add_option("mapping", "ld", "hybrid mapping: core | ld | node");
  cli.add_option("cluster", "westmere", "cluster: westmere | cray");
  cli.add_option("nodes", "32", "largest node count (powers of two up to)");
  if (!cli.parse(argc, argv)) return 1;

  const std::string family = cli.get_string("family");
  const int scale = static_cast<int>(cli.get_int("scale"));
  bench::PaperMatrix pm;
  if (family == "hmep") {
    pm = bench::make_hmep(scale);
  } else if (family == "hmeP-alt") {
    pm = bench::make_hmep_electron(scale);
  } else if (family == "samg") {
    pm = bench::make_samg(scale);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 1;
  }

  cluster::ScenarioParams params;
  const std::string variant = cli.get_string("variant");
  params.variant = variant == "novl"
                       ? cluster::KernelVariant::kVectorNoOverlap
                   : variant == "naive"
                       ? cluster::KernelVariant::kVectorNaiveOverlap
                       : cluster::KernelVariant::kTaskMode;
  const std::string mapping = cli.get_string("mapping");
  params.mapping = mapping == "core"
                       ? cluster::HybridMapping::kProcessPerCore
                   : mapping == "node"
                       ? cluster::HybridMapping::kProcessPerNode
                       : cluster::HybridMapping::kProcessPerDomain;
  params.kappa = pm.paper_kappa;
  params.volume_scale = pm.volume_scale;
  params.comm_volume_scale = pm.comm_volume_scale;

  const cluster::ClusterModel model(cli.get_string("cluster") == "cray"
                                        ? cluster::cray_xe6()
                                        : cluster::westmere_cluster());

  std::printf("%s on %s — %s, %s\n\n", pm.name.c_str(),
              model.spec().name.c_str(),
              cluster::variant_name(params.variant),
              cluster::mapping_name(params.mapping));

  std::vector<int> node_counts;
  for (int n = 1; n <= cli.get_int("nodes"); n *= 2) node_counts.push_back(n);
  const auto series = model.strong_scaling(pm.matrix, node_counts, params);

  util::Table table({"nodes", "procs", "thr/proc", "GFlop/s", "time [ms]",
                     "comm [ms]", "comp [ms]", "efficiency"});
  for (const auto& p : series) {
    table.add_row({util::Table::cell(static_cast<std::int64_t>(p.nodes)),
                   util::Table::cell(static_cast<std::int64_t>(p.processes)),
                   util::Table::cell(
                       static_cast<std::int64_t>(p.threads_per_process)),
                   util::Table::cell(p.gflops, 2),
                   util::Table::cell(p.time_s * 1e3, 3),
                   util::Table::cell(p.comm_s * 1e3, 3),
                   util::Table::cell(p.comp_s * 1e3, 3),
                   util::Table::cell(p.efficiency * 100.0, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("50%% parallel efficiency up to %d nodes\n",
              cluster::ClusterModel::half_efficiency_point(series));
  return 0;
}
