#include "sparse/occupancy.hpp"

#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace hspmv::sparse {
namespace {

TEST(Occupancy, ExactDensities) {
  // 4x4 matrix, 2x2 blocks. Fill block (0,0) fully, block (1,1) half.
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 1.0);
  b.add(2, 2, 1.0);
  b.add(3, 3, 1.0);
  const auto grid = block_occupancy(CsrMatrix(4, 4, b.finish()), 2);
  EXPECT_EQ(grid.grid_rows, 2);
  EXPECT_EQ(grid.grid_cols, 2);
  EXPECT_DOUBLE_EQ(grid.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grid.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(grid.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid.at(1, 1), 0.5);
}

TEST(Occupancy, RaggedEdgeBlocksNormalizeByActualSize) {
  // 3x3 with block 2: edge blocks are 2x1, 1x2, 1x1.
  CooBuilder b(3, 3);
  b.add(2, 2, 1.0);  // the 1x1 corner block, fully occupied
  const auto grid = block_occupancy(CsrMatrix(3, 3, b.finish()), 2);
  EXPECT_EQ(grid.grid_rows, 2);
  EXPECT_DOUBLE_EQ(grid.at(1, 1), 1.0);
}

TEST(Occupancy, AutoTargetsGridSize) {
  CooBuilder b(1000, 1000);
  for (index_t i = 0; i < 1000; ++i) b.add(i, i, 1.0);
  const auto grid = block_occupancy_auto(CsrMatrix(1000, 1000, b.finish()),
                                         /*target=*/10);
  EXPECT_LE(grid.grid_rows, 10);
  EXPECT_GE(grid.grid_rows, 5);
}

TEST(Occupancy, InvalidBlockSizeThrows) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  const CsrMatrix m(2, 2, b.finish());
  EXPECT_THROW((void)block_occupancy(m, 0), std::invalid_argument);
}

TEST(Occupancy, SpyRenderHasGridRows) {
  CooBuilder b(8, 8);
  for (index_t i = 0; i < 8; ++i) b.add(i, i, 1.0);
  const auto grid = block_occupancy(CsrMatrix(8, 8, b.finish()), 2);
  const std::string s = render_spy(grid);
  // Header line + 4 grid rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
  EXPECT_NE(s.find('@'), std::string::npos);  // diagonal blocks half-full
}

TEST(Occupancy, HistogramCountsAllBlocks) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  const auto grid = block_occupancy(CsrMatrix(4, 4, b.finish()), 2);
  const auto h = occupancy_histogram(grid);
  std::int64_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 4);
  EXPECT_EQ(h[0], 3);  // three empty blocks
}

TEST(Occupancy, HistogramBucketsDenseBlock) {
  CooBuilder b(2, 2);
  for (index_t i = 0; i < 2; ++i) {
    for (index_t j = 0; j < 2; ++j) b.add(i, j, 1.0);
  }
  const auto h =
      occupancy_histogram(block_occupancy(CsrMatrix(2, 2, b.finish()), 2));
  EXPECT_EQ(h[8], 1);  // density 1.0 -> >= 0.5 bucket
}

}  // namespace
}  // namespace hspmv::sparse
