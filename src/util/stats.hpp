// Summary statistics for benchmark measurements and load-balance analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace hspmv::util {

/// Online accumulator (Welford) for mean and variance plus min/max.
class RunningStats {
 public:
  void add(double value) noexcept;
  void clear() noexcept { *this = RunningStats(); }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between order
/// statistics. `q` in [0, 1]. The input is copied; not suitable for
/// enormous vectors in hot paths.
double percentile(std::vector<double> values, double q);

/// Load-imbalance factor: max / mean of the per-worker quantities.
/// 1.0 means perfect balance. Returns 1.0 for empty input.
double imbalance_factor(const std::vector<double>& per_worker);

/// Ratio max/min; +inf when min == 0 and max > 0. 1.0 for empty input.
double spread_factor(const std::vector<double>& per_worker);

}  // namespace hspmv::util
