#include "sparse/mmio.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace hspmv::sparse {
namespace {

TEST(Mmio, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.5\n"
      "1 3 -1\n"
      "2 2 3\n"
      "3 1 4\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 4.0);
}

TEST(Mmio, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 5.0\n"
      "3 3 2.0\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 4);  // off-diagonal mirrored, diagonals once
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_TRUE(m.is_structurally_symmetric());
}

TEST(Mmio, PatternEntriesReadAsOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
}

TEST(Mmio, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 2 7\n");
  EXPECT_DOUBLE_EQ(read_matrix_market(in).at(1, 1), 7.0);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedStream) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, WriteReadRoundTrip) {
  CooBuilder b(4, 3);
  b.add(0, 0, 1.5);
  b.add(1, 2, -2.25);
  b.add(3, 1, 1e-9);
  const CsrMatrix original(4, 3, b.finish());
  std::stringstream buffer;
  write_matrix_market(buffer, original);
  const CsrMatrix reread = read_matrix_market(buffer);
  ASSERT_EQ(reread.rows(), original.rows());
  ASSERT_EQ(reread.cols(), original.cols());
  ASSERT_EQ(reread.nnz(), original.nnz());
  for (index_t i = 0; i < original.rows(); ++i) {
    for (index_t j = 0; j < original.cols(); ++j) {
      EXPECT_DOUBLE_EQ(reread.at(i, j), original.at(i, j));
    }
  }
}

TEST(Mmio, FileRoundTrip) {
  CooBuilder b(2, 2);
  b.add(0, 1, 3.0);
  const CsrMatrix m(2, 2, b.finish());
  const std::string path = ::testing::TempDir() + "/hspmv_mmio_test.mtx";
  write_matrix_market_file(path, m);
  const CsrMatrix r = read_matrix_market_file(path);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 3.0);
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace hspmv::sparse
