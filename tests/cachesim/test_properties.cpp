// Property sweeps of the cache simulator and traffic replayer: kappa must
// respond monotonically to cache size, locality, and matrix structure.

#include <tuple>

#include <gtest/gtest.h>

#include "cachesim/spmv_traffic.hpp"
#include "matgen/random_matrix.hpp"

namespace hspmv::cachesim {
namespace {

// kappa is non-increasing in cache size for a fixed matrix.
class KappaVsCacheSize : public ::testing::TestWithParam<int> {};

TEST_P(KappaVsCacheSize, MonotoneInCapacity) {
  const int doublings = GetParam();
  const auto a = matgen::random_sparse(12000, 8,
                                       static_cast<std::uint64_t>(doublings));
  double previous = 1e9;
  for (int d = 0; d <= doublings; ++d) {
    const auto config = make_cache_config(std::size_t{8} << (10 + d));
    const auto report = simulate_spmv_traffic(a, config);
    EXPECT_LE(report.kappa, previous + 0.3)
        << "cache " << config.size_bytes;
    previous = report.kappa;
  }
  // The largest cache holds everything: kappa ~ 0.
  const auto big = simulate_spmv_traffic(a, make_cache_config(64u << 20));
  EXPECT_NEAR(big.kappa, 0.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Doublings, KappaVsCacheSize,
                         ::testing::Values(4, 6));

// kappa decreases as the band narrows (better locality), cache fixed.
TEST(KappaProperties, MonotoneInBandwidth) {
  const auto cache = make_cache_config(64u << 10);
  double previous = -1.0;
  for (const sparse::index_t band : {16000, 4000, 1000, 250}) {
    const auto a = matgen::random_banded(16000, band, 8, 3);
    const auto report = simulate_spmv_traffic(a, cache);
    if (previous >= 0.0) {
      EXPECT_LE(report.kappa, previous + 0.2) << "band " << band;
    }
    previous = report.kappa;
  }
}

// Total traffic is at least compulsory and b_load_count >= 1 when B is
// actually touched.
TEST(KappaProperties, TrafficLowerBounds) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = matgen::random_sparse(5000, 6, seed);
    const auto report =
        simulate_spmv_traffic(a, make_cache_config(32u << 10));
    EXPECT_GE(report.b_load_count, 0.99);
    EXPECT_GE(static_cast<double>(report.total_bytes),
              12.0 * static_cast<double>(a.nnz()));
    EXPECT_GE(report.kappa, -0.1);
    EXPECT_GE(report.read_bytes_val, 8u * static_cast<std::uint64_t>(a.nnz()));
  }
}

TEST(KappaProperties, MeasuredBalanceAtLeastCompulsory) {
  const auto a = matgen::random_sparse(8000, 10, 9);
  const auto report = simulate_spmv_traffic(a, make_cache_config(32u << 10));
  // 6 + 12/Nnzr is the kappa = 0 floor of Eq. (1).
  EXPECT_GE(report.measured_balance, 6.0 + 12.0 / report.nnzr - 0.3);
}

TEST(MakeCacheConfig, RoundsToValidPowerOfTwoSets) {
  for (const std::size_t request :
       {std::size_t{3000}, std::size_t{100000}, std::size_t{427 * 1024},
        std::size_t{8u << 20}}) {
    const auto config = make_cache_config(request);
    const std::size_t sets =
        config.size_bytes /
        (static_cast<std::size_t>(config.associativity) *
         static_cast<std::size_t>(config.line_bytes));
    EXPECT_EQ(sets & (sets - 1), 0u) << request;
    // Geometric rounding stays within a factor of sqrt(2)-ish.
    EXPECT_GT(static_cast<double>(config.size_bytes),
              0.55 * static_cast<double>(request));
    EXPECT_LT(static_cast<double>(config.size_bytes),
              1.7 * static_cast<double>(request) + 65536.0);
  }
  EXPECT_THROW((void)make_cache_config(1024, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::cachesim
