// DistMatrix construction-path tests: replicated-global vs truly
// distributed (from_local_block), halo metadata, and end-to-end spMVM
// through both paths.

#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "matgen/random_matrix.hpp"
#include "minimpi/runtime.hpp"
#include "sparse/kernels.hpp"
#include "sparse/rcm.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "util/prng.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

TEST(DistMatrix, FromLocalBlockMatchesReplicatedPath) {
  const CsrMatrix a = matgen::random_sparse(200, 6, 31);
  minimpi::run(4, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedNonzeros);
    const DistMatrix replicated(comm, a, boundaries);
    // The distributed path: each rank only ever holds its block.
    const CsrMatrix block = a.row_block(
        boundaries[static_cast<std::size_t>(comm.rank())],
        boundaries[static_cast<std::size_t>(comm.rank()) + 1]);
    const DistMatrix distributed =
        DistMatrix::from_local_block(comm, block, boundaries);

    EXPECT_EQ(distributed.owned_rows(), replicated.owned_rows());
    EXPECT_EQ(distributed.halo_count(), replicated.halo_count());
    EXPECT_EQ(distributed.global_rows(), replicated.global_rows());
    EXPECT_EQ(distributed.global_nnz(), replicated.global_nnz());
    EXPECT_EQ(distributed.plan().recv_blocks.size(),
              replicated.plan().recv_blocks.size());
    EXPECT_EQ(distributed.plan().send_blocks.size(),
              replicated.plan().send_blocks.size());
    for (index_t h = 0; h < distributed.halo_count(); ++h) {
      EXPECT_EQ(distributed.halo_global(h), replicated.halo_global(h));
    }
  });
}

TEST(DistMatrix, SpmvThroughDistributedConstruction) {
  const CsrMatrix a = matgen::random_banded(300, 40, 7, 5);
  std::vector<value_t> x_global(300);
  util::Xoshiro256 rng(3);
  for (auto& v : x_global) v = rng.uniform(-1.0, 1.0);
  std::vector<value_t> expected(300);
  sparse::spmv(a, x_global, expected);

  std::vector<value_t> result(300);
  std::mutex mutex;
  minimpi::run(3, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedNonzeros);
    const CsrMatrix block = a.row_block(
        boundaries[static_cast<std::size_t>(comm.rank())],
        boundaries[static_cast<std::size_t>(comm.rank()) + 1]);
    DistMatrix dist = DistMatrix::from_local_block(comm, block, boundaries);
    DistVector x(dist), y(dist);
    x.assign_from_global(x_global, dist.row_begin());
    SpmvEngine engine(dist, 2, Variant::kTaskMode);
    engine.apply(x, y);
    std::lock_guard<std::mutex> lock(mutex);
    for (index_t i = 0; i < dist.owned_rows(); ++i) {
      result[static_cast<std::size_t>(dist.row_begin() + i)] =
          y.owned()[static_cast<std::size_t>(i)];
    }
  });
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i], expected[i], 1e-12);
  }
}

TEST(DistMatrix, FromLocalBlockValidatesColumnSpan) {
  EXPECT_THROW(
      minimpi::run(2,
                   [&](minimpi::Comm& comm) {
                     // Block with too-narrow column range.
                     sparse::CooBuilder b(5, 5);
                     b.add(0, 0, 1.0);
                     const CsrMatrix block(5, 5, b.finish());
                     const std::vector<index_t> boundaries{0, 5, 10};
                     (void)DistMatrix::from_local_block(comm, block,
                                                        boundaries);
                   }),
      std::invalid_argument);
}

TEST(DistMatrix, HaloGlobalsAreSortedAndForeign) {
  const CsrMatrix a = matgen::random_sparse(150, 8, 17);
  minimpi::run(5, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedRows);
    const DistMatrix dist(comm, a, boundaries);
    const index_t lo = boundaries[static_cast<std::size_t>(comm.rank())];
    const index_t hi = boundaries[static_cast<std::size_t>(comm.rank()) + 1];
    index_t previous = -1;
    for (index_t h = 0; h < dist.halo_count(); ++h) {
      const index_t g = dist.halo_global(h);
      EXPECT_GT(g, previous);
      EXPECT_TRUE(g < lo || g >= hi) << "halo element owned locally";
      previous = g;
    }
  });
}

TEST(DistMatrix, RcmReorderedMatrixStillCorrect) {
  // Integration: the full pipeline on an RCM-permuted matrix.
  const CsrMatrix raw = matgen::random_banded(150, 50, 6, 23);
  const CsrMatrix a = sparse::rcm_reorder(raw);
  std::vector<value_t> x_global(150);
  util::Xoshiro256 rng(9);
  for (auto& v : x_global) v = rng.uniform(-1.0, 1.0);
  std::vector<value_t> expected(150);
  sparse::spmv(a, x_global, expected);

  std::vector<value_t> result(150);
  std::mutex mutex;
  minimpi::run(4, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedNonzeros);
    DistMatrix dist(comm, a, boundaries);
    DistVector x(dist), y(dist);
    x.assign_from_global(x_global, dist.row_begin());
    SpmvEngine engine(dist, 2, Variant::kVectorNaiveOverlap);
    engine.apply(x, y);
    std::lock_guard<std::mutex> lock(mutex);
    for (index_t i = 0; i < dist.owned_rows(); ++i) {
      result[static_cast<std::size_t>(dist.row_begin() + i)] =
          y.owned()[static_cast<std::size_t>(i)];
    }
  });
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i], expected[i], 1e-12);
  }
}

}  // namespace
}  // namespace hspmv::spmv
