#include "matgen/combinatorics.hpp"

#include <bit>

#include <gtest/gtest.h>

namespace hspmv::matgen {
namespace {

TEST(Binomial, KnownValues) {
  BinomialTable b(30);
  EXPECT_EQ(b(0, 0), 1);
  EXPECT_EQ(b(6, 3), 20);
  EXPECT_EQ(b(20, 5), 15504);  // the paper's phonon subspace dimension
  EXPECT_EQ(b(21, 6), 54264);
  EXPECT_EQ(b(30, 15), 155117520);
}

TEST(Binomial, OutOfRangeKIsZero) {
  BinomialTable b(10);
  EXPECT_EQ(b(5, -1), 0);
  EXPECT_EQ(b(5, 6), 0);
}

TEST(Binomial, TooLargeNThrows) {
  BinomialTable b(10);
  EXPECT_THROW((void)b(11, 2), std::out_of_range);
  EXPECT_THROW(BinomialTable(100), std::invalid_argument);
}

TEST(Binomial, PascalIdentity) {
  BinomialTable b(25);
  for (int n = 1; n <= 25; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(b(n, k), b(n - 1, k - 1) + b(n - 1, k));
    }
  }
}

TEST(FermionBasis, SizeMatchesBinomial) {
  EXPECT_EQ(FermionBasis(6, 3).size(), 20);
  EXPECT_EQ(FermionBasis(8, 4).size(), 70);
  EXPECT_EQ(FermionBasis(5, 0).size(), 1);
  EXPECT_EQ(FermionBasis(5, 5).size(), 1);
}

TEST(FermionBasis, StatesHaveCorrectPopcountAndOrder) {
  const FermionBasis basis(7, 3);
  std::uint64_t previous = 0;
  for (std::int64_t i = 0; i < basis.size(); ++i) {
    const std::uint64_t s = basis.state(i);
    EXPECT_EQ(std::popcount(s), 3);
    EXPECT_LT(s, 1ULL << 7);
    if (i > 0) {
      EXPECT_GT(s, previous);
    }
    previous = s;
  }
}

TEST(FermionBasis, RankIsInverseOfState) {
  const FermionBasis basis(9, 4);
  for (std::int64_t i = 0; i < basis.size(); ++i) {
    EXPECT_EQ(basis.rank(basis.state(i)), i);
  }
}

TEST(FermionBasis, EmptyBasisRankZero) {
  const FermionBasis basis(4, 0);
  EXPECT_EQ(basis.rank(0), 0);
}

TEST(FermionBasis, InvalidParamsThrow) {
  EXPECT_THROW(FermionBasis(4, 5), std::invalid_argument);
  EXPECT_THROW(FermionBasis(-1, 0), std::invalid_argument);
  EXPECT_THROW(FermionBasis(63, 1), std::invalid_argument);
}

TEST(BosonBasis, PaperDimension) {
  // 5 modes, at most 15 phonons: C(20, 5) = 15504 (Sect. 1.3.1).
  EXPECT_EQ(BosonBasis(5, 15).size(), 15504);
}

TEST(BosonBasis, SmallSizes) {
  EXPECT_EQ(BosonBasis(1, 3).size(), 4);   // 0,1,2,3
  EXPECT_EQ(BosonBasis(2, 2).size(), 6);   // (0,0)(0,1)(0,2)(1,0)(1,1)(2,0)
  EXPECT_EQ(BosonBasis(3, 0).size(), 1);
  EXPECT_EQ(BosonBasis(0, 5).size(), 1);   // the empty occupation vector
}

TEST(BosonBasis, StateRankRoundTrip) {
  const BosonBasis basis(4, 5);
  std::vector<int> occ;
  for (std::int64_t i = 0; i < basis.size(); ++i) {
    basis.state(i, occ);
    int total = 0;
    for (int v : occ) {
      EXPECT_GE(v, 0);
      total += v;
    }
    EXPECT_LE(total, 5);
    EXPECT_EQ(basis.rank(occ), i);
  }
}

TEST(BosonBasis, LexicographicOrder) {
  const BosonBasis basis(2, 2);
  std::vector<int> prev, cur;
  for (std::int64_t i = 1; i < basis.size(); ++i) {
    basis.state(i - 1, prev);
    basis.state(i, cur);
    EXPECT_TRUE(prev < cur) << "at index " << i;
  }
}

TEST(BosonBasis, RankRejectsOverBudget) {
  const BosonBasis basis(2, 3);
  EXPECT_THROW((void)basis.rank({2, 2}), std::out_of_range);
  EXPECT_THROW((void)basis.rank({-1, 0}), std::out_of_range);
  EXPECT_THROW((void)basis.rank({1}), std::invalid_argument);
}

TEST(BosonBasis, StateOutOfRangeThrows) {
  const BosonBasis basis(2, 2);
  std::vector<int> occ;
  EXPECT_THROW(basis.state(6, occ), std::out_of_range);
  EXPECT_THROW(basis.state(-1, occ), std::out_of_range);
}

}  // namespace
}  // namespace hspmv::matgen
