// Seed-echoing fixtures for randomized tests.
//
// Policy (see docs/testing.md): every randomized test derives its PRNG
// streams from one base seed, fixed by default so CI is reproducible. On
// failure the fixture prints the base seed; exporting HSPMV_TEST_SEED
// re-runs the test with that (or any other) seed for reproduction or
// extra fuzzing.
#pragma once

#include <cstdint>
#include <iostream>

#include <gtest/gtest.h>

#include "util/env.hpp"

namespace hspmv::testutil {

/// The fixed CI seed — chosen once, never meaningful.
inline constexpr std::uint64_t kDefaultTestSeed = 0x5eed'0206'2026ULL;

/// Base seed of this process: HSPMV_TEST_SEED when set, else the default.
inline std::uint64_t base_test_seed() {
  return static_cast<std::uint64_t>(util::env_int(
      "HSPMV_TEST_SEED", static_cast<std::int64_t>(kDefaultTestSeed)));
}

/// Independent stream seed `stream` derived from `base` (splitmix64), so
/// one test can draw matrices, vectors, and chaos plans from decoupled
/// streams.
inline std::uint64_t sub_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace detail {

/// Mixin: seed accessors + echo-on-failure, over any gtest fixture base.
template <typename Base>
class SeedEchoing : public Base {
 protected:
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t seed(std::uint64_t stream) const {
    return sub_seed(seed_, stream);
  }

  void TearDown() override {
    if (this->HasFailure()) {
      std::cerr << "[   SEED   ] reproduce with HSPMV_TEST_SEED=" << seed_
                << std::endl;
    }
    Base::TearDown();
  }

 private:
  std::uint64_t seed_ = base_test_seed();
};

}  // namespace detail

/// TEST_F base for randomized tests.
using SeededTest = detail::SeedEchoing<::testing::Test>;

/// TEST_P base for randomized parameterized tests.
template <typename ParamT>
using SeededParamTest = detail::SeedEchoing<::testing::TestWithParam<ParamT>>;

}  // namespace hspmv::testutil
