// ELLPACK and SELL-C-sigma sparse formats.
//
// The related work the paper benchmarks against ([1], [2], [3]) covers
// "different matrix storage formats"; CRS wins for general matrices on
// cache-based CPUs (Sect. 1.2), and these two alternatives make the
// trade-offs measurable: plain ELLPACK pads every row to the longest row
// (SIMD-friendly but catastrophic for skewed row lengths), SELL-C-sigma
// pads per chunk of C rows after sorting windows of sigma rows by length,
// bounding the padding (Kreutzer et al., arXiv:1112.5588).
//
// SELL-C-sigma here also provides the split local/non-local kernel pair
// of the paper's Sect. 3.1 and thread-parallel chunk-major sweeps, so the
// distributed engine can run its node-level compute phase on this format
// (see spmv/engine.hpp's LocalKernel).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::team {
class ThreadTeam;
}

namespace hspmv::sparse {

/// Plain ELLPACK: all rows padded to the maximum row length, column-major
/// (element j of every row stored contiguously).
class EllMatrix {
 public:
  EllMatrix() = default;

  static EllMatrix from_csr(const CsrMatrix& a);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t width() const { return width_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  /// Stored slots / actual nonzeros (>= 1; the padding overhead).
  [[nodiscard]] double padding_ratio() const;
  /// Heap bytes of the format's arrays (val + col for every padded slot).
  [[nodiscard]] std::size_t storage_bytes() const {
    return col_.size() * sizeof(index_t) + val_.size() * sizeof(value_t);
  }

  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  offset_t nnz_ = 0;
  util::AlignedVector<index_t> col_;  // width_ x rows_, column-major
  util::AlignedVector<value_t> val_;
};

/// SELL-C-sigma: rows are reordered by descending length within windows
/// of `sigma` rows, grouped into chunks of `chunk` rows, and each chunk
/// is padded to its own maximal length. sigma = 1 disables sorting
/// (SELL-C); sigma = rows sorts globally.
///
/// Layout invariant used by the split kernels: each row's real entries
/// keep their CSR order (columns ascending); padding slots (val 0,
/// col 0) follow the real entries of a row.
class SellMatrix {
 public:
  SellMatrix() = default;

  /// Throws std::invalid_argument for chunk < 1 or sigma < 1. A sigma > 1
  /// that is not a multiple of chunk is rounded *up* to the next multiple
  /// (a sorting window narrower than a chunk, or ending mid-chunk, cannot
  /// reduce that chunk's padding — chunks never straddle windows after
  /// rounding); sigma() reports the effective value. The autotuner sweep
  /// feeds arbitrary (C, sigma) pairs through this normalization.
  static SellMatrix from_csr(const CsrMatrix& a, int chunk = 32,
                             int sigma = 1);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] int chunk() const { return chunk_; }
  /// Effective sorting window (post-rounding; see from_csr).
  [[nodiscard]] int sigma() const { return sigma_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] index_t chunk_count() const {
    return static_cast<index_t>(chunk_widths_.size());
  }
  /// Per-chunk offsets into the slot arrays (chunk_count() + 1 entries) —
  /// the chunk-granular analogue of CSR's row_ptr, usable with
  /// team::nnz_balanced_boundaries for slot-balanced chunk distribution.
  [[nodiscard]] std::span<const offset_t> chunk_offsets() const {
    return chunk_offsets_;
  }
  /// permutation()[p] = original row stored at permuted position p.
  [[nodiscard]] std::span<const index_t> permutation() const {
    return permutation_;
  }
  [[nodiscard]] double padding_ratio() const;
  /// Heap bytes of the format's arrays (val + col per stored slot, chunk
  /// metadata, permutation).
  [[nodiscard]] std::size_t storage_bytes() const {
    return col_.size() * sizeof(index_t) + val_.size() * sizeof(value_t) +
           chunk_offsets_.size() * sizeof(offset_t) +
           chunk_widths_.size() * sizeof(index_t) +
           permutation_.size() * sizeof(index_t);
  }

  /// y = A x (y in original row order — the kernel un-permutes).
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Chunk-range kernel: y(rows of chunks [chunk_begin, chunk_end)) = A x.
  /// The inner loop runs across the rows of a chunk — unit stride in val
  /// and col, the format's SIMD-friendly axis.
  void spmv_chunks(index_t chunk_begin, index_t chunk_end,
                   std::span<const value_t> x, std::span<value_t> y) const;

  /// Thread-parallel y = A x: contiguous slot-balanced chunk ranges, one
  /// per team member. Chunks never share rows, so the sweep is race-free.
  void spmv_parallel(std::span<const value_t> x, std::span<value_t> y,
                     team::ThreadTeam& team) const;

  /// Split kernel, local phase: entries with col < local_cols only
  /// (each row's local prefix), zeroing the covered y entries first.
  void spmv_local(index_t local_cols, std::span<const value_t> x,
                  std::span<value_t> y) const;
  /// Split kernel, non-local phase: adds entries with col >= local_cols.
  /// Rows without non-local entries are not touched (Eq. 2 traffic).
  void spmv_nonlocal(index_t local_cols, std::span<const value_t> x,
                     std::span<value_t> y) const;

  /// Chunk-range versions of the split phases, for explicit thread
  /// chunking (the engine's task mode).
  void spmv_local_chunks(index_t local_cols, index_t chunk_begin,
                         index_t chunk_end, std::span<const value_t> x,
                         std::span<value_t> y) const;
  void spmv_nonlocal_chunks(index_t local_cols, index_t chunk_begin,
                            index_t chunk_end, std::span<const value_t> x,
                            std::span<value_t> y) const;

  /// Blocked multi-RHS (SpMM) sweeps: x and y hold `width` interleaved
  /// columns per row (element (row, q) at row*width + q). Column q runs
  /// in exactly the slot-major accumulation order of the spmv kernels,
  /// so SpMM column q is bitwise spmv on column q. Chunk slots stay
  /// cache-resident across the width passes — the matrix's padded
  /// streams amortize over the block (6*beta/K term of B_SpMM).
  void spmm(int width, std::span<const value_t> x,
            std::span<value_t> y) const;
  void spmm_chunks(int width, index_t chunk_begin, index_t chunk_end,
                   std::span<const value_t> x, std::span<value_t> y) const;
  void spmm_local_chunks(index_t local_cols, int width, index_t chunk_begin,
                         index_t chunk_end, std::span<const value_t> x,
                         std::span<value_t> y) const;
  void spmm_nonlocal_chunks(index_t local_cols, int width,
                            index_t chunk_begin, index_t chunk_end,
                            std::span<const value_t> x,
                            std::span<value_t> y) const;

  /// Scalar reference sweeps: the pre-SIMD chunk kernels, pinned scalar
  /// (auto-vectorization disabled) for equivalence tests and honest
  /// SIMD-vs-scalar benchmarking. The production *_chunks entry points
  /// dispatch to util/simd.hpp's chunk-major vector path when lanes are
  /// available; that path assigns one lane per chunk row and accumulates
  /// over j in the scalar order, so no reassociation occurs — with the
  /// toolchain contracting the scalar loops to FMA (GCC's default) the
  /// SIMD path is *bitwise* identical to these references, the policy
  /// asserted by tests/sparse/test_simd_kernels.cpp.
  void spmv_chunks_scalar(index_t chunk_begin, index_t chunk_end,
                          std::span<const value_t> x,
                          std::span<value_t> y) const;
  void spmv_local_chunks_scalar(index_t local_cols, index_t chunk_begin,
                                index_t chunk_end, std::span<const value_t> x,
                                std::span<value_t> y) const;
  void spmv_nonlocal_chunks_scalar(index_t local_cols, index_t chunk_begin,
                                   index_t chunk_end,
                                   std::span<const value_t> x,
                                   std::span<value_t> y) const;
  void spmm_chunks_scalar(int width, index_t chunk_begin, index_t chunk_end,
                          std::span<const value_t> x,
                          std::span<value_t> y) const;
  void spmm_local_chunks_scalar(index_t local_cols, int width,
                                index_t chunk_begin, index_t chunk_end,
                                std::span<const value_t> x,
                                std::span<value_t> y) const;
  void spmm_nonlocal_chunks_scalar(index_t local_cols, int width,
                                   index_t chunk_begin, index_t chunk_end,
                                   std::span<const value_t> x,
                                   std::span<value_t> y) const;

  /// Thread-parallel split phases (same chunk distribution as
  /// spmv_parallel, so both phases of a row land on the same thread).
  void spmv_local_parallel(index_t local_cols, std::span<const value_t> x,
                           std::span<value_t> y,
                           team::ThreadTeam& team) const;
  void spmv_nonlocal_parallel(index_t local_cols, std::span<const value_t> x,
                              std::span<value_t> y,
                              team::ThreadTeam& team) const;

  /// NUMA first-touch re-placement of the slot arrays for a fixed chunk
  /// distribution (parties = chunk_bounds.size() - 1 <= team.size()):
  /// member p clones the slots of chunks [chunk_bounds[p], chunk_bounds[p+1])
  /// into fresh untouched storage, so each page lands on the locality
  /// domain of the thread that will stream it in spmv_chunks. Templated on
  /// the team type (anything with execute(body(int))) to keep sparse/
  /// free of a team/ link dependency.
  template <typename Team>
  void place_first_touch(std::span<const std::int64_t> chunk_bounds,
                         Team& team) {
    std::vector<std::int64_t> slot_bounds(chunk_bounds.size());
    for (std::size_t i = 0; i < chunk_bounds.size(); ++i) {
      slot_bounds[i] =
          chunk_offsets_[static_cast<std::size_t>(chunk_bounds[i])];
    }
    col_ = util::first_touch_vector<index_t>(team, col_, slot_bounds);
    val_ = util::first_touch_vector<value_t>(team, val_, slot_bounds);
  }

 private:
  void check_vectors(std::span<const value_t> x,
                     std::span<value_t> y) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  int chunk_ = 32;
  int sigma_ = 1;
  offset_t nnz_ = 0;
  std::vector<index_t> permutation_;      // permuted position -> orig row
  std::vector<offset_t> chunk_offsets_;   // into col_/val_ per chunk
  std::vector<index_t> chunk_widths_;
  std::vector<index_t> row_lengths_;      // real entries per permuted row
  // FirstTouchVector so place_first_touch can re-place without a
  // value-initializing reallocation touching the pages first.
  util::FirstTouchVector<index_t> col_;
  util::FirstTouchVector<value_t> val_;
};

}  // namespace hspmv::sparse
