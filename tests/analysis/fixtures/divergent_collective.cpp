// Negative fixture for hspmv-check: divergent-collective.
//
// Analyzed by tests/analysis/test_hspmv_check.cpp; never compiled. Both
// flagged shapes are present: a rank-conditional branch whose collective
// set differs from its (absent) sibling, and a rank-dependent early
// return with a collective still ahead in the function.
#include "minimpi/comm.hpp"

namespace fixture {

// Shape (A): only rank 0 enters the barrier; everyone else sails past
// and the barrier never completes.
void lopsided_barrier(minimpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();
  }
}

// Shape (B): rank 0 leaves before the allreduce every other rank joins.
long long early_exit(minimpi::Comm& comm, long long value) {
  if (comm.rank() == 0) {
    return value;
  }
  return comm.allreduce(value, minimpi::ReduceOp::kSum);
}

// Elastic shape (A): spawn is a collective rendezvous too — ranks that
// skip it strand the growers (and the joiners never start).
void lopsided_spawn(minimpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.spawn(1, [](minimpi::Comm&) {});
  }
}

}  // namespace fixture
