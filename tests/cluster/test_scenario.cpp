// The traffic-scenario engine (cluster/scenario.hpp): trace generation
// is a pure function of (kind, seed, base_ranks); replaying a trace
// drives the batching server through grows, decommissions and degraded
// members while every completed request still matches the dense oracle;
// and two replays of the same trace agree bitwise on every result and
// on every structural scorecard field.
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/scenario.hpp"
#include "common/reference.hpp"
#include "common/seeded_fixture.hpp"
#include "matgen/random_matrix.hpp"

namespace hspmv::cluster {
namespace {

using sparse::CsrMatrix;
using sparse::value_t;

class ScenarioTest : public testutil::SeededTest {};

bool same_phase(const ScenarioPhase& a, const ScenarioPhase& b) {
  return a.grow == b.grow && a.kill_global_rank == b.kill_global_rank &&
         a.slow_global_rank == b.slow_global_rank &&
         a.slow_seconds == b.slow_seconds && a.requests == b.requests &&
         a.deadline_s == b.deadline_s;
}

TEST_F(ScenarioTest, TraceGenerationIsDeterministicAndSane) {
  for (const ScenarioKind kind : all_scenarios()) {
    EXPECT_EQ(parse_scenario(scenario_name(kind)), kind);
    const ScenarioTrace once = make_trace(kind, seed(1), 2);
    const ScenarioTrace again = make_trace(kind, seed(1), 2);
    ASSERT_EQ(once.phases.size(), again.phases.size()) << scenario_name(kind);
    for (std::size_t p = 0; p < once.phases.size(); ++p) {
      EXPECT_TRUE(same_phase(once.phases[p], again.phases[p]))
          << scenario_name(kind) << " phase " << p;
    }
    // Schedule invariants: a quorum always survives, rank 0 never dies,
    // there is real load, and the topology actually changes.
    EXPECT_GE(once.base_ranks, 2);
    EXPECT_GE(once.final_ranks(), 2) << scenario_name(kind);
    EXPECT_GE(once.peak_ranks(), once.base_ranks);
    EXPECT_GT(once.total_requests(), 0);
    int grows = 0, kills = 0;
    for (const ScenarioPhase& phase : once.phases) {
      EXPECT_NE(phase.kill_global_rank, 0);
      EXPECT_NE(phase.slow_global_rank, 0);
      grows += phase.grow;
      if (phase.kill_global_rank >= 0) ++kills;
    }
    EXPECT_GT(grows + kills, 0) << scenario_name(kind);
    // A different seed jitters the load but keeps the named shape.
    const ScenarioTrace other = make_trace(kind, seed(1) + 17, 2);
    EXPECT_EQ(other.phases.size(), once.phases.size());
    EXPECT_EQ(other.final_ranks(), once.final_ranks());
  }
}

TEST_F(ScenarioTest, ReplayServesEveryRequestWithOracleBitsAcrossAllKinds) {
  // Every named trace end to end: all requests complete, each result
  // matches the dense reference for its (phase, request) RHS, and the
  // scorecard's structural fields match the schedule.
  const CsrMatrix a = matgen::random_banded(80, 10, 3, seed(2));
  for (const ScenarioKind kind : all_scenarios()) {
    const ScenarioTrace trace = make_trace(kind, seed(3), 2);
    std::mutex mutex;
    std::map<std::uint64_t, std::vector<value_t>> results;
    ReplayOptions options;
    options.keep_results = true;
    options.on_phase_report = [&](int /*phase*/,
                                  const spmv::ServerReport& rep) {
      std::lock_guard<std::mutex> lock(mutex);
      for (const spmv::CompletedRequest& done : rep.completed) {
        results.emplace(done.id, done.y);
      }
    };
    const SloReport report = replay_scenario(trace, a, options);

    EXPECT_EQ(report.kind, kind);
    EXPECT_EQ(report.completed(), trace.total_requests())
        << scenario_name(kind);
    EXPECT_EQ(report.final_ranks, trace.final_ranks()) << scenario_name(kind);
    int grow_phases = 0, kills = 0;
    for (const ScenarioPhase& phase : trace.phases) {
      if (phase.grow > 0) ++grow_phases;
      if (phase.kill_global_rank >= 0) ++kills;
    }
    EXPECT_EQ(report.grows(), grow_phases) << scenario_name(kind);
    EXPECT_EQ(report.rebuilds(), kills) << scenario_name(kind);
    // Each topology change is accounted against full re-replication of
    // the whole matrix; the incremental path moved strictly less.
    EXPECT_EQ(report.rows_full_replication(),
              static_cast<std::int64_t>(grow_phases + kills) * a.rows())
        << scenario_name(kind);
    EXPECT_GT(report.rows_migrated(), 0) << scenario_name(kind);
    EXPECT_LT(report.rows_migrated(), report.rows_full_replication())
        << scenario_name(kind);
    EXPECT_GE(report.attainment(), 0.0);
    EXPECT_LE(report.attainment(), 1.0);

    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(results.size(),
              static_cast<std::size_t>(trace.total_requests()))
        << scenario_name(kind);
    for (std::size_t p = 0; p < trace.phases.size(); ++p) {
      for (int r = 0; r < trace.phases[p].requests; ++r) {
        const auto id = scenario_request_id(static_cast<int>(p), r);
        const auto it = results.find(id);
        ASSERT_NE(it, results.end())
            << scenario_name(kind) << " phase " << p << " request " << r;
        const auto x = scenario_rhs(trace, static_cast<int>(p), r, a.cols());
        EXPECT_LT(testutil::max_abs_diff(it->second,
                                         testutil::dense_reference(a, x)),
                  1e-12)
            << scenario_name(kind) << " phase " << p << " request " << r;
      }
    }
    results.clear();
  }
}

TEST_F(ScenarioTest, ReplayIsBitwiseDeterministicUnderFixedSeed) {
  const CsrMatrix a = matgen::random_sparse(100, 5, seed(4));
  const ScenarioTrace trace =
      make_trace(ScenarioKind::kCascadingFailure, seed(5), 2);
  std::vector<std::map<std::uint64_t, std::vector<value_t>>> rounds(2);
  std::vector<SloReport> reports;
  for (int round = 0; round < 2; ++round) {
    std::mutex mutex;
    ReplayOptions options;
    options.keep_results = true;
    options.on_phase_report = [&](int /*phase*/,
                                  const spmv::ServerReport& rep) {
      std::lock_guard<std::mutex> lock(mutex);
      for (const spmv::CompletedRequest& done : rep.completed) {
        rounds[static_cast<std::size_t>(round)].emplace(done.id, done.y);
      }
    };
    reports.push_back(replay_scenario(trace, a, options));
  }
  // Bitwise-identical results request by request...
  ASSERT_EQ(rounds[0].size(), rounds[1].size());
  for (const auto& [id, y] : rounds[0]) {
    const auto it = rounds[1].find(id);
    ASSERT_NE(it, rounds[1].end()) << "id " << id;
    EXPECT_EQ(y, it->second) << "id " << id;  // bitwise
  }
  // ... and identical structural scorecards (latencies are wall clock).
  ASSERT_EQ(reports[0].phases.size(), reports[1].phases.size());
  for (std::size_t p = 0; p < reports[0].phases.size(); ++p) {
    const PhaseSlo& x = reports[0].phases[p];
    const PhaseSlo& y = reports[1].phases[p];
    EXPECT_EQ(x.ranks, y.ranks) << "phase " << p;
    EXPECT_EQ(x.completed, y.completed) << "phase " << p;
    EXPECT_EQ(x.grows, y.grows) << "phase " << p;
    EXPECT_EQ(x.rebuilds, y.rebuilds) << "phase " << p;
    EXPECT_EQ(x.rows_migrated, y.rows_migrated) << "phase " << p;
    EXPECT_EQ(x.rows_full_replication, y.rows_full_replication)
        << "phase " << p;
  }
  EXPECT_EQ(reports[0].final_ranks, reports[1].final_ranks);
}

TEST_F(ScenarioTest, RejectsMalformedTracesAndNames) {
  EXPECT_THROW((void)parse_scenario("rush-hour"), std::invalid_argument);
  const CsrMatrix a = matgen::random_banded(40, 6, 2, seed(6));
  ScenarioTrace bad = make_trace(ScenarioKind::kDiurnal, seed(7), 2);
  bad.base_ranks = 1;
  EXPECT_THROW((void)replay_scenario(bad, a), std::invalid_argument);
  ScenarioTrace kills_root = make_trace(ScenarioKind::kDiurnal, seed(7), 2);
  kills_root.phases[1].kill_global_rank = 0;
  EXPECT_THROW((void)replay_scenario(kills_root, a), std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::cluster
