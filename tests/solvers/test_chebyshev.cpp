#include "solvers/chebyshev.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "matgen/poisson.hpp"
#include "solvers/lanczos.hpp"

namespace hspmv::solvers {
namespace {

using sparse::value_t;

TEST(SpectralWindow, MapsBoundsInsideUnitInterval) {
  const auto w = SpectralWindow::from_bounds(-3.0, 5.0);
  EXPECT_LT(std::abs(w.scale(-3.0)), 1.0);
  EXPECT_LT(std::abs(w.scale(5.0)), 1.0);
  EXPECT_NEAR(w.scale(1.0), 0.0, 1e-12);  // midpoint
  EXPECT_NEAR(w.unscale(w.scale(2.5)), 2.5, 1e-12);
  EXPECT_THROW((void)SpectralWindow::from_bounds(1.0, 1.0),
               std::invalid_argument);
}

TEST(Jackson, KernelProperties) {
  const auto g = jackson_kernel(64);
  ASSERT_EQ(g.size(), 64u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  // Positive and decreasing.
  for (std::size_t m = 1; m < g.size(); ++m) {
    EXPECT_GT(g[m], 0.0);
    EXPECT_LT(g[m], g[m - 1]);
  }
  EXPECT_LT(g.back(), 0.01);
}

TEST(Kpm, MomentZeroIsUnityAndOddMomentsVanishForSymmetricSpectrum) {
  // Tridiagonal with zero diagonal has a symmetric spectrum: odd moments
  // about the centre vanish.
  sparse::CooBuilder b(64, 64);
  for (sparse::index_t i = 0; i + 1 < 64; ++i) {
    b.add_symmetric(i, i + 1, 1.0);
  }
  for (sparse::index_t i = 0; i < 64; ++i) b.add(i, i, 0.0);
  const sparse::CsrMatrix a(64, 64, b.finish());
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(-2.0, 2.0);
  KpmOptions options;
  options.moments = 32;
  options.random_vectors = 8;
  const auto mu = kpm_moments(op, window, options);
  EXPECT_NEAR(mu[0], 1.0, 1e-12);  // T_0 trace / N
  EXPECT_NEAR(mu[1], 0.0, 0.05);
  EXPECT_NEAR(mu[3], 0.0, 0.05);
}

TEST(Kpm, DensityIntegratesToOne) {
  const auto a = matgen::laplacian1d(128);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  KpmOptions options;
  options.moments = 64;
  options.random_vectors = 8;
  const auto mu = kpm_moments(op, window, options);

  // Integrate the reconstructed DOS over the spectrum with the
  // trapezoidal rule.
  std::vector<double> energies;
  const int points = 400;
  for (int i = 0; i <= points; ++i) {
    energies.push_back(-0.5 + 5.0 * i / points);
  }
  const auto rho = kpm_density(mu, window, energies);
  double integral = 0.0;
  for (int i = 0; i < points; ++i) {
    integral += 0.5 *
                (rho[static_cast<std::size_t>(i)] +
                 rho[static_cast<std::size_t>(i + 1)]) *
                (energies[static_cast<std::size_t>(i + 1)] -
                 energies[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Kpm, DensityNonNegativeWithJackson) {
  const auto a = matgen::poisson5_2d(10, 10);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 8.0);
  const auto mu = kpm_moments(op, window);
  std::vector<double> energies;
  for (int i = 0; i <= 100; ++i) energies.push_back(8.0 * i / 100);
  for (const double rho : kpm_density(mu, window, energies)) {
    EXPECT_GE(rho, -1e-9);
  }
}

TEST(Propagate, PreservesNorm) {
  const auto a = matgen::laplacian1d(64);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  std::vector<value_t> re(64, 0.0), im(64, 0.0);
  re[32] = 1.0;
  const int terms = chebyshev_propagate(op, window, re, im,
                                        {.time = 2.5});
  EXPECT_GT(terms, 2);
  double norm = 0.0;
  for (std::size_t i = 0; i < 64; ++i) {
    norm += re[i] * re[i] + im[i] * im[i];
  }
  EXPECT_NEAR(norm, 1.0, 1e-10);
}

TEST(Propagate, MatchesEigenphaseOnEigenvector) {
  // On an eigenvector, exp(-iHt) v = exp(-i lambda t) v.
  const int n = 32;
  const auto a = matgen::laplacian1d(n);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  const int k = 5;
  const double lambda =
      2.0 - 2.0 * std::cos(k * std::numbers::pi / (n + 1));
  std::vector<value_t> re(n), im(n, 0.0);
  double norm = 0.0;
  for (int i = 0; i < n; ++i) {
    re[static_cast<std::size_t>(i)] =
        std::sin((i + 1) * k * std::numbers::pi / (n + 1));
    norm += re[static_cast<std::size_t>(i)] * re[static_cast<std::size_t>(i)];
  }
  for (auto& v : re) v /= std::sqrt(norm);
  const std::vector<value_t> re0 = re;

  const double t = 1.7;
  chebyshev_propagate(op, window, re, im, {.time = t});
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(re[static_cast<std::size_t>(i)],
                std::cos(lambda * t) * re0[static_cast<std::size_t>(i)],
                1e-9);
    EXPECT_NEAR(im[static_cast<std::size_t>(i)],
                -std::sin(lambda * t) * re0[static_cast<std::size_t>(i)],
                1e-9);
  }
}

TEST(Propagate, ZeroTimeIsIdentity) {
  const auto a = matgen::laplacian1d(16);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  std::vector<value_t> re(16, 0.25), im(16, -0.1);
  const std::vector<value_t> re0 = re, im0 = im;
  chebyshev_propagate(op, window, re, im, {.time = 0.0});
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(re[i], re0[i], 1e-12);
    EXPECT_NEAR(im[i], im0[i], 1e-12);
  }
}

TEST(Propagate, ComposesOverTime) {
  // exp(-iH t2) exp(-iH t1) = exp(-iH (t1+t2)).
  const auto a = matgen::laplacian1d(24);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  std::vector<value_t> re(24, 0.0), im(24, 0.0);
  re[7] = 1.0;
  std::vector<value_t> re2 = re, im2 = im;
  chebyshev_propagate(op, window, re, im, {.time = 0.8});
  chebyshev_propagate(op, window, re, im, {.time = 1.2});
  chebyshev_propagate(op, window, re2, im2, {.time = 2.0});
  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(re[i], re2[i], 1e-9);
    EXPECT_NEAR(im[i], im2[i], 1e-9);
  }
}

TEST(Chebyshev, BadInputsThrow) {
  const auto a = matgen::laplacian1d(8);
  const auto op = make_operator(a);
  const auto window = SpectralWindow::from_bounds(0.0, 4.0);
  KpmOptions bad;
  bad.moments = 1;
  EXPECT_THROW((void)kpm_moments(op, window, bad), std::invalid_argument);
  EXPECT_THROW((void)jackson_kernel(0), std::invalid_argument);
  EXPECT_THROW((void)kpm_density({}, window, {0.0}), std::invalid_argument);
  std::vector<value_t> re(4), im(8);
  EXPECT_THROW((void)chebyshev_propagate(op, window, re, im),
               std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::solvers
