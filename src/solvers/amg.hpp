// Aggregation-based algebraic multigrid — a small sibling of the sAMG
// code (Stueben et al., refs. [14], [15]) whose Poisson matrix is the
// paper's second test case. Used standalone (V-cycles) or as a
// preconditioner for CG; the fine-level work is spMVM-shaped, which is
// exactly why the paper's kernel matters to this method family.
//
// Construction: strength-of-connection graph (|a_ij| >
// theta * sqrt(a_ii a_jj)), greedy aggregation, smoothed-aggregation
// prolongation (Vanek: P = (I - omega D^-1 A) P_tent; the tentative
// piecewise-constant P alone does not yield a contracting V-cycle),
// Galerkin coarse operators (P^T A P), weighted-Jacobi smoothing, dense
// solve on the coarsest level.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::solvers {

struct AmgOptions {
  double strength_threshold = 0.08;  ///< theta on the finest level
  /// Per-level decay of theta: Galerkin coarse operators are denser with
  /// relatively weaker couplings, so the threshold must relax with depth
  /// or coarsening stagnates.
  double strength_decay = 0.5;
  int pre_smooth = 2;
  int post_smooth = 2;
  double jacobi_weight = 2.0 / 3.0;
  /// Smooth the tentative prolongation (smoothed aggregation). Disable to
  /// get plain (non-contracting standalone, but PCG-usable) aggregation.
  bool smoothed_aggregation = true;
  double prolongation_weight = 2.0 / 3.0;
  int max_levels = 20;
  int coarse_size = 64;  ///< switch to the dense direct solve below this
  /// Stop coarsening when a level shrinks by less than this factor
  /// (guards against stagnating aggregation).
  double min_coarsening_ratio = 0.9;
};

struct AmgLevel {
  sparse::CsrMatrix a;
  sparse::CsrMatrix p;            ///< prolongation to this level's fine side
  // HSPMV-CHECK-ALLOW(first-touch): level metadata built at setup; the sequential smoother reads it on the calling thread
  std::vector<double> inv_diag;   ///< 1 / a_ii for the Jacobi smoother
  // Work vectors (sized once).
  std::vector<double> x, b, r;
};

class AmgHierarchy {
 public:
  /// Build from a symmetric positive-(semi)definite matrix. Throws
  /// std::invalid_argument for non-square input or zero diagonals.
  AmgHierarchy(const sparse::CsrMatrix& a, const AmgOptions& options = {});

  [[nodiscard]] int levels() const { return static_cast<int>(levels_.size()); }
  [[nodiscard]] const AmgLevel& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  /// Total stored nonzeros across levels / fine-level nonzeros — the
  /// grid + operator complexity measure of AMG practice.
  [[nodiscard]] double operator_complexity() const;

  /// One V-cycle for A x = b, improving `x` in place.
  void v_cycle(std::span<const double> b, std::span<double> x);

  /// Run V-cycles until ||r|| / ||b|| <= tolerance. Returns cycles used
  /// (<= max_cycles).
  int solve(std::span<const double> b, std::span<double> x,
            double tolerance = 1e-10, int max_cycles = 100);

 private:
  void cycle(std::size_t l);
  void smooth(AmgLevel& level, std::span<const double> b,
              std::span<double> x, int sweeps);

  AmgOptions options_;
  std::vector<AmgLevel> levels_;
  // Dense Cholesky-ish factorization of the coarsest operator.
  // HSPMV-CHECK-ALLOW(first-touch): coarsest-level dense factor; tiny and solved sequentially
  std::vector<double> coarse_dense_;
  int coarse_n_ = 0;
};

/// Greedy aggregation of the strength graph; returns the aggregate id of
/// every vertex (exposed for tests).
std::vector<sparse::index_t> aggregate(const sparse::CsrMatrix& a,
                                       double strength_threshold);

}  // namespace hspmv::solvers
