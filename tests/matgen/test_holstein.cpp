#include "matgen/holstein.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sparse/stats.hpp"

namespace hspmv::matgen {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

bool numerically_symmetric(const CsrMatrix& a, double tol = 1e-12) {
  const CsrMatrix t = a.transpose();
  if (t.nnz() != a.nnz()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto [ca, va] = a.row(i);
    const auto [ct, vt] = t.row(i);
    if (ca.size() != ct.size()) return false;
    for (std::size_t k = 0; k < ca.size(); ++k) {
      if (ca[k] != ct[k] || std::abs(va[k] - vt[k]) > tol) return false;
    }
  }
  return true;
}

TEST(Holstein, PaperBasisDimensions) {
  // Sect. 1.3.1: six electrons (3 up + 3 down) on six sites -> subspace
  // dimension 400; 15 phonons in 5 modes -> 1.55e4; total 6,201,600.
  HolsteinHubbardParams p;
  p.sites = 6;
  p.electrons_up = 3;
  p.electrons_down = 3;
  p.phonon_modes = -1;  // sites - 1 = 5
  p.max_phonons = 15;
  const auto info = holstein_basis_info(p);
  EXPECT_EQ(info.electron_dim, 400);
  EXPECT_EQ(info.phonon_dim, 15504);
  EXPECT_EQ(info.total_dim, 6201600);
  EXPECT_EQ(info.phonon_modes, 5);
}

HolsteinHubbardParams small_params() {
  HolsteinHubbardParams p;
  p.sites = 4;
  p.electrons_up = 2;
  p.electrons_down = 2;
  p.phonon_modes = 3;
  p.max_phonons = 3;
  p.hopping = 1.0;
  p.hubbard_u = 4.0;
  p.phonon_frequency = 0.8;
  p.coupling = 1.2;
  return p;
}

TEST(Holstein, MatrixIsSymmetric) {
  const CsrMatrix h = holstein_hubbard(small_params());
  EXPECT_TRUE(numerically_symmetric(h));
}

TEST(Holstein, DimensionMatchesBasisInfo) {
  const auto p = small_params();
  const auto info = holstein_basis_info(p);
  const CsrMatrix h = holstein_hubbard(p);
  EXPECT_EQ(h.rows(), info.total_dim);
  EXPECT_EQ(h.cols(), info.total_dim);
}

TEST(Holstein, OrderingsAreRelatedByPermutation) {
  auto p = small_params();
  p.ordering = HolsteinOrdering::kPhononContiguous;
  const CsrMatrix hmep_phonon = holstein_hubbard(p);
  p.ordering = HolsteinOrdering::kElectronContiguous;
  const CsrMatrix hmep_electron = holstein_hubbard(p);
  ASSERT_EQ(hmep_phonon.nnz(), hmep_electron.nnz());
  // Same value multiset (symmetric permutation invariant).
  std::vector<value_t> a(hmep_phonon.val().begin(), hmep_phonon.val().end());
  std::vector<value_t> b(hmep_electron.val().begin(),
                         hmep_electron.val().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(Holstein, TwoSiteSingleElectronHopping) {
  // One spin-up electron on two sites, no phonons: H = -t sigma_x.
  HolsteinHubbardParams p;
  p.sites = 2;
  p.electrons_up = 1;
  p.electrons_down = 0;
  p.phonon_modes = 0;
  p.max_phonons = 0;
  p.hopping = 1.5;
  p.hubbard_u = 4.0;
  const CsrMatrix h = holstein_hubbard(p);
  ASSERT_EQ(h.rows(), 2);
  EXPECT_DOUBLE_EQ(h.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(h.at(0, 1), -1.5);
  EXPECT_DOUBLE_EQ(h.at(1, 0), -1.5);
  EXPECT_DOUBLE_EQ(h.at(1, 1), 0.0);
}

TEST(Holstein, ZeroPhononModesIgnoreCouplingParameters) {
  // Regression: with phonon_modes == 0 the per-site density table is
  // empty, and the coupling loop must not touch it (the row assembler
  // once formed the density pointer through vector::operator[], which is
  // undefined on an empty vector even at offset 0 — caught by the UBSan
  // lane). The observable property: coupling and frequency are inert.
  HolsteinHubbardParams bare;
  bare.sites = 3;
  bare.electrons_up = 1;
  bare.electrons_down = 1;
  bare.phonon_modes = 0;
  bare.max_phonons = 0;
  bare.hopping = 1.25;
  bare.hubbard_u = 2.0;
  HolsteinHubbardParams coupled = bare;
  coupled.coupling = 3.0;
  coupled.phonon_frequency = 1.7;
  const CsrMatrix a = holstein_hubbard(bare);
  const CsrMatrix b = holstein_hubbard(coupled);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
    }
  }
}

TEST(Holstein, HubbardDiagonal) {
  // Two sites, one up + one down, no phonons. Electron states
  // (u, d) in {0,1}^2; U on the two doubly-occupied states.
  HolsteinHubbardParams p;
  p.sites = 2;
  p.electrons_up = 1;
  p.electrons_down = 1;
  p.phonon_modes = 0;
  p.max_phonons = 0;
  p.hopping = 0.0;
  p.hubbard_u = 3.5;
  const CsrMatrix h = holstein_hubbard(p);
  ASSERT_EQ(h.rows(), 4);
  int with_u = 0, without_u = 0;
  for (index_t i = 0; i < 4; ++i) {
    const double d = h.at(i, i);
    if (d == 3.5) {
      ++with_u;
    } else if (d == 0.0) {
      ++without_u;
    }
  }
  EXPECT_EQ(with_u, 2);
  EXPECT_EQ(without_u, 2);
}

TEST(Holstein, PurePhononLadder) {
  // No electrons: H = w0 * total phonons, diagonal only (coupling needs
  // electron density).
  HolsteinHubbardParams p;
  p.sites = 2;
  p.electrons_up = 0;
  p.electrons_down = 0;
  p.phonon_modes = 1;
  p.max_phonons = 3;
  p.phonon_frequency = 0.7;
  p.coupling = 2.0;
  const CsrMatrix h = holstein_hubbard(p);
  ASSERT_EQ(h.rows(), 4);
  EXPECT_EQ(h.nnz(), 4);  // diagonal only
  for (index_t n = 0; n < 4; ++n) {
    EXPECT_NEAR(h.at(n, n), 0.7 * n, 1e-12);
  }
}

TEST(Holstein, SingleSitePolaronCoupling) {
  // One electron pinned on one site, one phonon mode: the exactly
  // solvable displaced-oscillator problem. Off-diagonals are
  // -g w0 sqrt(n+1).
  HolsteinHubbardParams p;
  p.sites = 1;
  p.electrons_up = 1;
  p.electrons_down = 0;
  p.phonon_modes = 1;
  p.max_phonons = 2;
  p.hopping = 1.0;  // no bonds on one site
  p.phonon_frequency = 1.0;
  p.coupling = 0.5;
  const CsrMatrix h = holstein_hubbard(p);
  ASSERT_EQ(h.rows(), 3);
  EXPECT_NEAR(h.at(0, 1), -0.5, 1e-12);
  EXPECT_NEAR(h.at(1, 2), -0.5 * std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(h.at(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(h.at(0, 2), 0.0, 1e-12);  // coupling changes n by 1 only
  EXPECT_TRUE(numerically_symmetric(h));
}

TEST(Holstein, NnzrInPaperRange) {
  // A moderately sized instance should land in the paper's Nnzr ~ 7..15
  // ballpark for the Hamiltonian family.
  HolsteinHubbardParams p;
  p.sites = 5;
  p.electrons_up = 2;
  p.electrons_down = 2;
  p.phonon_modes = 4;
  p.max_phonons = 4;
  const CsrMatrix h = holstein_hubbard(p);
  const auto s = sparse::compute_stats(h);
  EXPECT_GT(s.nnz_per_row_mean, 7.0);
  EXPECT_LT(s.nnz_per_row_mean, 20.0);
  EXPECT_EQ(s.empty_rows, 0);
  EXPECT_TRUE(s.has_full_diagonal);
}

TEST(Holstein, DimensionGuardThrows) {
  HolsteinHubbardParams p;
  p.sites = 6;
  p.electrons_up = 3;
  p.electrons_down = 3;
  p.max_phonons = 15;
  EXPECT_THROW((void)holstein_hubbard(p, /*max_dimension=*/1000),
               std::length_error);
}

TEST(Holstein, InvalidParamsThrow) {
  HolsteinHubbardParams p;
  p.sites = 0;
  EXPECT_THROW((void)holstein_basis_info(p), std::invalid_argument);
  p = HolsteinHubbardParams{};
  p.electrons_up = 99;
  EXPECT_THROW((void)holstein_basis_info(p), std::invalid_argument);
  p = HolsteinHubbardParams{};
  p.max_phonons = -1;
  EXPECT_THROW((void)holstein_basis_info(p), std::invalid_argument);
}

TEST(Holstein, OpenVsPeriodicBoundary) {
  HolsteinHubbardParams p;
  p.sites = 4;
  p.electrons_up = 1;
  p.electrons_down = 0;
  p.phonon_modes = 0;
  p.max_phonons = 0;
  p.periodic = true;
  const CsrMatrix ring = holstein_hubbard(p);
  p.periodic = false;
  const CsrMatrix chain = holstein_hubbard(p);
  // The ring has the extra wrap-around bond: 2 more hopping entries.
  EXPECT_EQ(ring.nnz(), chain.nnz() + 2);
}

TEST(Holstein, FermionSignShowsInRing) {
  // 2 spinless-like electrons (up only) on a 4-ring: wrap-around hops
  // acquire a (-1) from anti-commutation; verify H is still symmetric and
  // off-diagonal magnitudes equal t.
  HolsteinHubbardParams p;
  p.sites = 4;
  p.electrons_up = 2;
  p.electrons_down = 0;
  p.phonon_modes = 0;
  p.max_phonons = 0;
  p.hopping = 1.0;
  const CsrMatrix h = holstein_hubbard(p);
  EXPECT_TRUE(numerically_symmetric(h));
  bool found_positive = false;  // a sign-flipped hop gives +t
  for (const auto v : h.val()) {
    if (v > 0.5) found_positive = true;
    if (v != 0.0) {
      EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_positive);
}

}  // namespace
}  // namespace hspmv::matgen
