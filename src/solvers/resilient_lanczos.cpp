// Fault-tolerant, elastic distributed Lanczos.
//
// Mirrors lanczos.cpp on a RecoverableSpmv operator with the same
// recovery protocol as resilient_cg.cpp: buddy-checkpoint the recurrence
// state every K iterations, and on a permanent FaultError shrink,
// rebuild, restore, roll back, continue. Unlike CG the recurrence cannot
// be restarted from x alone, so the checkpoint carries the Lanczos
// vectors (v, v_prev, and the reorthogonalization basis when enabled)
// plus the tridiagonal coefficients as replicated scalars.
//
// Capacity grows (ResilienceOptions::grows) always run in rollback mode
// here regardless of GrowPlan::rollback: the checkpoint already carries
// the complete recurrence, so restoring it on the grown membership is
// both the simplest and the only deterministic resync — and it hands
// joiners everything they need (vectors by restore, coefficients as
// replicated scalars) without a separate state transfer.
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>

#include "solvers/resilience.hpp"
#include "solvers/tridiag.hpp"
#include "sparse/vector_ops.hpp"
#include "spmv/resilient.hpp"
#include "util/timer.hpp"

namespace hspmv::solvers {

using sparse::index_t;
using sparse::value_t;

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Start-vector entry for global row `row`: a hash of (seed, row) mapped
/// to [-1, 1). Unlike the sequential driver's PRNG stream this depends
/// only on the global row index, so the start vector — and hence the
/// whole recurrence — is independent of the partition and survives
/// repartitioning after a failure or a grow.
value_t start_entry(std::uint64_t seed, std::int64_t row) {
  const std::uint64_t h = mix64(mix64(seed) ^ static_cast<std::uint64_t>(row));
  return -1.0 + 2.0 * (static_cast<value_t>(h >> 11) * 0x1.0p-53);
}

/// One rank's driver; joiners get a fresh instance entered through
/// run_joiner (see ElasticCg in resilient_cg.cpp for the pattern).
class ElasticLanczos {
 public:
  ElasticLanczos(const sparse::CsrMatrix& global,
                 const ResilienceOptions& resilience,
                 const LanczosOptions& options)
      : global_(global),
        resilience_(resilience),
        options_(options),
        fired_(resilience.grows.size(), 0) {}

  ResilientLanczosResult run(minimpi::Comm comm) {
    world_rank_ = comm.global_rank();
    op_.emplace(std::move(comm), global_, resilience_.threads,
                resilience_.variant, resilience_.engine);
    resize_state();
    for (std::size_t i = 0; i < n_; ++i) {
      v_[i] = start_entry(options_.seed,
                          row_begin_ + static_cast<std::int64_t>(i));
    }
    const value_t norm = std::sqrt(dot(v_, v_));
    if (norm == 0.0) {
      throw std::runtime_error("resilient_lanczos: zero start vector");
    }
    for (auto& entry : v_) entry /= norm;
    loop();
    return std::move(out_);
  }

  ResilientLanczosResult run_joiner(minimpi::Comm grown) {
    world_rank_ = grown.global_rank();
    op_.emplace(spmv::RecoverableSpmv::JoinerTag{}, std::move(grown),
                global_, resilience_.threads, resilience_.variant,
                resilience_.engine);
    grow_resync(/*joiner=*/true);
    loop();
    return std::move(out_);
  }

 private:
  void resize_state() {
    row_begin_ = op_->matrix().row_begin();
    n_ = static_cast<std::size_t>(op_->matrix().owned_rows());
    v_.assign(n_, 0.0);
    v_prev_.assign(n_, 0.0);
    w_.assign(n_, 0.0);
    xd_ = op_->make_vector();
    yd_ = op_->make_vector();
  }

  void apply(const std::vector<value_t>& in, std::vector<value_t>& result) {
    std::copy(in.begin(), in.end(), xd_->owned().begin());
    const spmv::Timings t = op_->apply(*xd_, *yd_);
    out_.recovery.transient_retries += t.retries;
    std::copy(yd_->owned().begin(), yd_->owned().end(), result.begin());
  }

  double dot(std::span<const value_t> a, std::span<const value_t> c) {
    // Pinned local order (sparse::dot) so the distributed dot is
    // bitwise-stable for a fixed partition.
    const value_t local = sparse::dot(a, c);
    return op_->comm().allreduce(local, minimpi::ReduceOp::kSum);
  }

  // Checkpoint layout: vectors = [v, v_prev, basis...], scalars =
  // [n_alpha, alpha..., n_beta, beta..., previous_lowest].
  void save_checkpoint() {
    LanczosResult& result = out_.lanczos;
    std::vector<std::span<const value_t>> vectors;
    vectors.emplace_back(v_);
    vectors.emplace_back(v_prev_);
    for (const auto& q : basis_) vectors.emplace_back(q);
    // HSPMV-CHECK-ALLOW(first-touch): checkpoint scalar packing; cold
    std::vector<value_t> scalars;
    scalars.push_back(static_cast<value_t>(result.alpha.size()));
    scalars.insert(scalars.end(), result.alpha.begin(), result.alpha.end());
    scalars.push_back(static_cast<value_t>(result.beta.size()));
    scalars.insert(scalars.end(), result.beta.begin(), result.beta.end());
    scalars.push_back(previous_lowest_);
    store_.save(op_->comm(), row_begin_, it_, vectors, scalars);
  }

  /// Adopt a restored checkpoint as the current recurrence state (the
  /// operator has already been rebuilt on the current communicator).
  void adopt(const BuddyCheckpoint::Restored& restored) {
    LanczosResult& result = out_.lanczos;
    it_ = static_cast<int>(restored.iteration);
    resize_state();
    const auto slice = [&](const std::vector<value_t>& full,
                           std::vector<value_t>& local) {
      std::copy(full.begin() + row_begin_,
                full.begin() + row_begin_ + static_cast<std::ptrdiff_t>(n_),
                local.begin());
    };
    slice(restored.vectors.at(0), v_);
    slice(restored.vectors.at(1), v_prev_);
    basis_.assign(restored.vectors.size() - 2,
                  std::vector<value_t>(n_, 0.0));
    for (std::size_t k = 2; k < restored.vectors.size(); ++k) {
      slice(restored.vectors[k], basis_[k - 2]);
    }
    const auto& scalars = restored.scalars;
    std::size_t cursor = 0;
    const auto n_alpha = static_cast<std::size_t>(scalars.at(cursor++));
    result.alpha.assign(
        scalars.begin() + static_cast<std::ptrdiff_t>(cursor),
        scalars.begin() + static_cast<std::ptrdiff_t>(cursor + n_alpha));
    cursor += n_alpha;
    const auto n_beta = static_cast<std::size_t>(scalars.at(cursor++));
    result.beta.assign(
        scalars.begin() + static_cast<std::ptrdiff_t>(cursor),
        scalars.begin() + static_cast<std::ptrdiff_t>(cursor + n_beta));
    cursor += n_beta;
    previous_lowest_ = scalars.at(cursor);
    // A top-of-iteration checkpoint holds it alphas and it betas (the
    // recurrence needs the trailing beta); the tridiagonal solve wants
    // one beta fewer than alphas.
    result.ritz_values =
        result.alpha.empty()
            ? std::vector<double>{}
            : tridiagonal_eigenvalues(
                  result.alpha,
                  {result.beta.begin(),
                   result.beta.begin() + static_cast<std::ptrdiff_t>(
                                             result.alpha.size() - 1)});
    result.iterations = it_;
  }

  /// Post-grow resync: restore the last complete checkpoint on the
  /// grown membership and re-replicate it under the new buddy mapping.
  /// Joiners additionally adopt the fired-plan flags by broadcast.
  void grow_resync(bool joiner) {
    util::Timer timer;
    RecoveryStats& stats = out_.recovery;
    const auto restored = store_.restore_global(
        op_->comm(), global_.rows(), op_->matrix().row_begin(),
        op_->matrix().owned_rows());
    if (!joiner) {
      stats.iterations_lost += it_ - static_cast<int>(restored.iteration);
    }
    adopt(restored);
    // HSPMV-CHECK-ALLOW(first-touch): grow-plan flag header, broadcast once per recovery; cold metadata
    std::vector<value_t> flags(fired_.size());
    if (op_->comm().rank() == 0) {
      for (std::size_t i = 0; i < fired_.size(); ++i) {
        flags[i] = fired_[i] ? 1.0 : 0.0;
      }
    }
    op_->comm().broadcast(std::span<value_t>(flags), 0);
    for (std::size_t i = 0; i < fired_.size(); ++i) {
      fired_[i] = flags[i] != 0.0 ? 1 : 0;
    }
    save_checkpoint();
    ++stats.grows;
    stats.rows_migrated += op_->last_rebuild().rows_migrated;
    stats.rows_full_replication += op_->last_rebuild().rows_full_replication;
    stats.grow_seconds += timer.seconds();
  }

  void maybe_grow() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < resilience_.grows.size(); ++i) {
        if (fired_[i] || resilience_.grows[i].iteration != it_) continue;
        fired_[i] = 1;
        const GrowPlan plan = resilience_.grows[i];
        const sparse::CsrMatrix& global = global_;
        const ResilienceOptions& resilience = resilience_;
        const LanczosOptions& options = options_;
        op_->grow_and_rebuild(
            plan.ranks,
            [&global, &resilience, &options](minimpi::Comm& grown) {
              ElasticLanczos peer(global, resilience, options);
              ResilientLanczosResult result = peer.run_joiner(grown);
              if (resilience.on_joiner_lanczos_result) {
                resilience.on_joiner_lanczos_result(std::move(result));
              }
            });
        grow_resync(/*joiner=*/false);
        progress = true;
        break;
      }
    }
  }

  /// One Lanczos iteration; returns true when converged.
  bool step() {
    LanczosResult& result = out_.lanczos;
    if (options_.full_reorthogonalization) basis_.push_back(v_);
    apply(v_, w_);
    const double a = dot(w_, v_);
    result.alpha.push_back(a);
    for (std::size_t i = 0; i < n_; ++i) {
      w_[i] -= a * v_[i];
      if (it_ > 0) w_[i] -= result.beta.back() * v_prev_[i];
    }
    if (options_.full_reorthogonalization) {
      for (const auto& q : basis_) {
        const double projection = dot(w_, q);
        for (std::size_t i = 0; i < n_; ++i) w_[i] -= projection * q[i];
      }
    }
    const double b = std::sqrt(dot(w_, w_));

    result.ritz_values = tridiagonal_eigenvalues(result.alpha, result.beta);
    result.iterations = it_ + 1;
    const double lowest = result.ritz_values.front();
    if (it_ > 0 && std::abs(lowest - previous_lowest_) <
                       options_.tolerance * (1.0 + std::abs(lowest))) {
      result.converged = true;
      return true;
    }
    previous_lowest_ = lowest;

    if (b < 1e-14) {
      // Invariant subspace found: the Ritz values are exact.
      result.converged = true;
      return true;
    }
    result.beta.push_back(b);
    v_prev_ = v_;
    for (std::size_t i = 0; i < n_; ++i) v_[i] = w_[i] / b;
    ++it_;
    return false;
  }

  bool recover(const minimpi::FaultError& fault) {
    RecoveryStats& stats = out_.recovery;
    util::Timer recovery_timer;
    minimpi::FaultError current = fault;
    for (int attempt = 0;; ++attempt) {
      if (attempt >= resilience_.max_recoveries) throw current;
      try {
        op_->shrink_and_rebuild();
        stats.rows_migrated += op_->last_rebuild().rows_migrated;
        stats.rows_full_replication +=
            op_->last_rebuild().rows_full_replication;
        const auto restored = store_.restore_global(
            op_->comm(), global_.rows(), op_->matrix().row_begin(),
            op_->matrix().owned_rows());
        stats.iterations_lost += it_ - static_cast<int>(restored.iteration);
        adopt(restored);
        save_checkpoint();
        ++stats.failures_recovered;
        break;
      } catch (const CheckpointLostError&) {
        throw;
      } catch (const minimpi::FaultError& again) {
        if (again.kind() == minimpi::FaultKind::kTransient) throw;
        if (again.rank() == world_rank_) {
          stats.survivor = false;
          stats.final_size = 0;
          return false;
        }
        current = again;
      }
    }
    stats.recovery_seconds += recovery_timer.seconds();
    return true;
  }

  void loop() {
    while (!out_.lanczos.converged && it_ < options_.max_iterations) {
      try {
        maybe_grow();
        if (it_ % resilience_.checkpoint_interval == 0) save_checkpoint();
        for (const FailurePlan& plan : resilience_.failures) {
          if (plan.rank == world_rank_ && plan.iteration == it_) {
            op_->comm().simulate_rank_failure();
          }
        }
        if (step()) break;
      } catch (const minimpi::FaultError& fault) {
        if (fault.kind() == minimpi::FaultKind::kTransient) throw;
        if (fault.rank() == world_rank_) {
          out_.recovery.survivor = false;
          out_.recovery.final_size = 0;
          return;
        }
        if (!recover(fault)) return;
      }
    }
    out_.recovery.final_size = op_->comm().size();
  }

  const sparse::CsrMatrix& global_;
  const ResilienceOptions& resilience_;
  const LanczosOptions& options_;

  ResilientLanczosResult out_;
  int world_rank_ = -1;
  std::optional<spmv::RecoverableSpmv> op_;
  BuddyCheckpoint store_;
  index_t row_begin_ = 0;
  std::size_t n_ = 0;
  std::optional<spmv::DistVector> xd_, yd_;
  std::vector<value_t> v_, v_prev_, w_;
  std::vector<std::vector<value_t>> basis_;
  double previous_lowest_ = 0.0;
  int it_ = 0;
  std::vector<char> fired_;
};

}  // namespace

ResilientLanczosResult resilient_lanczos(minimpi::Comm comm,
                                         const sparse::CsrMatrix& global,
                                         const ResilienceOptions& resilience,
                                         const LanczosOptions& options) {
  if (global.rows() != global.cols()) {
    throw std::invalid_argument("resilient_lanczos: matrix must be square");
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument(
        "resilient_lanczos: max_iterations must be >= 1");
  }
  if (resilience.checkpoint_interval < 1) {
    throw std::invalid_argument(
        "resilient_lanczos: checkpoint_interval must be >= 1");
  }
  ElasticLanczos driver(global, resilience, options);
  return driver.run(std::move(comm));
}

}  // namespace hspmv::solvers
