// Negative fixture for hspmv-check: determinism-policy.
//
// Analyzed by tests/analysis/test_hspmv_check.cpp; never compiled.
// Exercises the three flagged shapes: an ad-hoc scalar FP reduction
// loop, std::accumulate on a kernel path, and a raw SIMD intrinsic
// outside the util/simd.hpp shim.
#include <numeric>
#include <span>
#include <vector>

namespace fixture {

double adhoc_reduction(std::span<const double> values) {
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc += values[i];
  }
  return acc;
}

double left_fold(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

double raw_intrinsic(const double* a, const double* b) {
  __m256d va = _mm256_loadu_pd(a);
  __m256d vb = _mm256_loadu_pd(b);
  __m256d prod = _mm256_mul_pd(va, vb);
  double lanes[4];
  _mm256_storeu_pd(lanes, prod);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace fixture
