// EXP-E3 (extension) — the communication-volume curve behind the paper's
// "universal drop in scalability beyond about six nodes ... ascribed to a
// strong decrease in overall internode communication volume when the
// number of nodes is small" (Sect. 4).
//
// For HMeP, the total internode halo volume grows steeply while few nodes
// own large contiguous blocks (every new cut exposes fresh coupling
// surface) and then saturates; once it stops growing, each added node
// brings pure comm overhead and the efficiency knee appears.

#include <cstdio>

#include "common/paper_matrices.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/partition.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("ext_comm_volume",
                      "extension: internode comm volume vs node count");
  cli.add_option("scale", "1", "paper-matrix scale level (0..3; 3 = full paper size)");
  cli.add_option("procs-per-node", "2", "processes per node (per-LD = 2)");
  if (!cli.parse(argc, argv)) return 1;
  const int ppn = static_cast<int>(cli.get_int("procs-per-node"));

  for (auto& pm :
       {bench::make_hmep(static_cast<int>(cli.get_int("scale"))),
        bench::make_samg(static_cast<int>(cli.get_int("scale")))}) {
    std::printf("--- %s (N = %d) ---\n", pm.name.c_str(), pm.matrix.rows());
    util::Table table({"nodes", "internode halo [MB, extrapolated]",
                       "growth vs previous", "per node [MB]"});
    double previous = 0.0;
    for (int nodes = 1; nodes <= 32; nodes *= 2) {
      const int processes = nodes * ppn;
      const auto boundaries = spmv::partition_rows(
          pm.matrix, processes, spmv::PartitionStrategy::kBalancedNonzeros);
      const auto stats = spmv::analyze_partition(pm.matrix, boundaries);
      double internode_elements = 0.0;
      for (int p = 0; p < processes; ++p) {
        const int my_node = p / ppn;
        for (const auto& [peer, count] :
             stats.recv_from[static_cast<std::size_t>(p)]) {
          if (peer / ppn != my_node) {
            internode_elements += static_cast<double>(count);
          }
        }
      }
      const double megabytes =
          internode_elements * 8.0 * pm.comm_volume_scale / 1e6;
      table.add_row(
          {util::Table::cell(static_cast<std::int64_t>(nodes)),
           util::Table::cell(megabytes, 2),
           previous > 0.0
               ? util::Table::cell(megabytes / previous, 2) + "x"
               : std::string("-"),
           util::Table::cell(nodes > 0 ? megabytes / nodes : 0.0, 2)});
      previous = megabytes;
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "expected: steep growth at small node counts that flattens (HMeP "
      "saturates once every phonon-block coupling is cut); the flattening "
      "point is where the paper's efficiency knee sits. sAMG grows "
      "gently throughout (surface-to-volume).\n");
  return 0;
}
