#include "spmv/resilient.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "minimpi/fault.hpp"

namespace hspmv::spmv {

RecoverableSpmv::RecoverableSpmv(minimpi::Comm comm,
                                 const sparse::CsrMatrix& global, int threads,
                                 Variant variant, EngineOptions options)
    : comm_(std::move(comm)),
      global_(&global),
      threads_(threads),
      variant_(variant),
      options_(options) {
  build();
}

RecoverableSpmv::RecoverableSpmv(JoinerTag, minimpi::Comm grown,
                                 const sparse::CsrMatrix& global, int threads,
                                 Variant variant, EngineOptions options)
    : global_(&global),
      threads_(threads),
      variant_(variant),
      options_(options) {
  if (!grown.valid()) {
    throw std::logic_error("RecoverableSpmv: joiner needs a valid comm");
  }
  migrate_build(std::move(grown), /*joiner=*/true);
}

void RecoverableSpmv::build() {
  boundaries_ = partition_rows(*global_, comm_.size(),
                               PartitionStrategy::kBalancedNonzeros);
  // The engine keeps a pointer into matrix_, so replace the matrix first
  // and re-target the engine after (its thread team persists).
  matrix_ = std::make_unique<DistMatrix>(comm_, *global_, boundaries_);
  if (engine_ == nullptr) {
    engine_ = std::make_unique<SpmvEngine>(*matrix_, threads_, variant_,
                                           options_);
  } else {
    engine_->rebuild(*matrix_);
  }
}

void RecoverableSpmv::rebuild(minimpi::Comm new_comm) {
  if (!new_comm.valid()) {
    throw std::logic_error("RecoverableSpmv::rebuild: null communicator");
  }
  migrate_build(std::move(new_comm), /*joiner=*/false);
}

void RecoverableSpmv::shrink_and_rebuild() {
  // Another rank dying mid-shrink aborts the rendezvous with FaultError;
  // each retry runs under the bumped epoch. The attempt bound can never
  // bind in a well-formed run — there are at most size-1 further deaths.
  const int max_attempts = comm_.size() + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    try {
      rebuild(comm_.shrink());
      return;
    } catch (const minimpi::FaultError&) {
      if (attempt + 1 == max_attempts) throw;
    }
  }
}

void RecoverableSpmv::grow_and_rebuild(
    int extra, const std::function<void(minimpi::Comm&)>& joiner_main) {
  rebuild(comm_.spawn(extra, joiner_main));
}

void RecoverableSpmv::migrate_build(minimpi::Comm new_comm, bool joiner) {
  const auto t0 = std::chrono::steady_clock::now();

  // Old-topology identity. Survivors carry it; joiners learn it below.
  // After a death comm_ is revoked, but group()/boundaries_ are plain
  // local reads — no traffic happens on the old communicator.
  std::vector<int> old_group = joiner ? std::vector<int>() : comm_.group();
  std::vector<sparse::index_t> old_boundaries =
      joiner ? std::vector<sparse::index_t>() : boundaries_;

  // Agree on the old partition. New rank 0 is always an old member —
  // grow keeps old ranks in place, shrink compacts survivors downward —
  // so its copy is authoritative for the joiners.
  std::int64_t old_size = static_cast<std::int64_t>(old_group.size());
  new_comm.broadcast(std::span<std::int64_t>(&old_size, 1), 0);
  old_group.resize(static_cast<std::size_t>(old_size));
  old_boundaries.resize(static_cast<std::size_t>(old_size) + 1);
  new_comm.broadcast(std::span<int>(old_group), 0);
  new_comm.broadcast(std::span<sparse::index_t>(old_boundaries), 0);

  const std::vector<int> new_group = new_comm.group();
  const int new_size = new_comm.size();
  const int my_new = new_comm.rank();
  const int my_world = new_comm.global_rank();

  // old rank -> new rank hosting the same thread, -1 when it is gone
  // (dead, or simply absent from the new membership).
  std::vector<int> old_owner_of(old_group.size(), -1);
  int my_old = -1;
  for (std::size_t s = 0; s < old_group.size(); ++s) {
    const auto it =
        std::find(new_group.begin(), new_group.end(), old_group[s]);
    if (it != new_group.end()) {
      old_owner_of[s] = static_cast<int>(it - new_group.begin());
    }
    if (old_group[s] == my_world) my_old = static_cast<int>(s);
  }

  // Everyone derives the same new partition and therefore the same plan.
  std::vector<sparse::index_t> new_boundaries = partition_rows(
      *global_, new_size, PartitionStrategy::kBalancedNonzeros);
  MigrationPlan plan =
      plan_migration(old_boundaries, old_owner_of, new_boundaries);

  // Serialize the rows I own that move elsewhere. Per row the index
  // stream carries [nnz, global cols...]; the value stream the values.
  // Entry order is preserved from the old block, which preserved it from
  // the seed — so a migrated row is byte-for-byte the row a fresh seed
  // extraction would produce, and kernel summation order is unchanged.
  const sparse::CsrMatrix* old_block =
      matrix_ != nullptr ? &matrix_->local() : nullptr;
  const sparse::index_t old_owned =
      matrix_ != nullptr ? matrix_->owned_rows() : 0;
  const sparse::index_t old_begin =
      matrix_ != nullptr ? matrix_->row_begin() : 0;
  const auto to_global = [&](sparse::index_t c) {
    return c < old_owned ? old_begin + c
                         : matrix_->halo_global(c - old_owned);
  };
  std::vector<std::vector<sparse::index_t>> send_idx(
      static_cast<std::size_t>(new_size));
  std::vector<std::vector<sparse::value_t>> send_val(
      static_cast<std::size_t>(new_size));
  if (my_old >= 0 && old_block != nullptr) {
    for (const MigrationMove& mv : plan.moves) {
      if (mv.source != my_new) continue;
      auto& idx = send_idx[static_cast<std::size_t>(mv.dest)];
      auto& val = send_val[static_cast<std::size_t>(mv.dest)];
      for (sparse::index_t r = mv.row_begin; r < mv.row_end; ++r) {
        const auto [cols, vals] = old_block->row(r - old_begin);
        idx.push_back(static_cast<sparse::index_t>(cols.size()));
        for (const sparse::index_t c : cols) idx.push_back(to_global(c));
        val.insert(val.end(), vals.begin(), vals.end());
      }
    }
  }
  const auto recv_idx = new_comm.alltoallv(send_idx);
  const auto recv_val = new_comm.alltoallv(send_val);

  // Assemble my new block in global row order: kept rows copy locally,
  // moved rows drain the per-source streams (senders emitted them in the
  // same ascending order), seeded rows re-extract from the seed.
  const sparse::index_t my_begin =
      new_boundaries[static_cast<std::size_t>(my_new)];
  const sparse::index_t my_end =
      new_boundaries[static_cast<std::size_t>(my_new) + 1];
  std::vector<sparse::offset_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(my_end - my_begin) + 1);
  row_ptr.push_back(0);
  util::AlignedVector<sparse::index_t> col_idx;
  util::AlignedVector<sparse::value_t> val;
  std::vector<std::size_t> idx_cursor(static_cast<std::size_t>(new_size), 0);
  std::vector<std::size_t> val_cursor(static_cast<std::size_t>(new_size), 0);
  for (sparse::index_t r = my_begin; r < my_end; ++r) {
    const auto ub = std::upper_bound(old_boundaries.begin(),
                                     old_boundaries.end(), r);
    const int s = static_cast<int>(ub - old_boundaries.begin()) - 1;
    const int owner = old_owner_of[static_cast<std::size_t>(s)];
    if (owner == my_new && old_block != nullptr) {
      const auto [cols, vals] = old_block->row(r - old_begin);
      for (const sparse::index_t c : cols) col_idx.push_back(to_global(c));
      val.insert(val.end(), vals.begin(), vals.end());
    } else if (owner < 0) {
      const auto [cols, vals] = global_->row(r);
      col_idx.insert(col_idx.end(), cols.begin(), cols.end());
      val.insert(val.end(), vals.begin(), vals.end());
    } else {
      const auto& idx = recv_idx[static_cast<std::size_t>(owner)];
      const auto& vls = recv_val[static_cast<std::size_t>(owner)];
      std::size_t& ic = idx_cursor[static_cast<std::size_t>(owner)];
      std::size_t& vc = val_cursor[static_cast<std::size_t>(owner)];
      const auto n = static_cast<std::size_t>(idx[ic++]);
      col_idx.insert(col_idx.end(), idx.begin() + static_cast<std::ptrdiff_t>(ic),
                     idx.begin() + static_cast<std::ptrdiff_t>(ic + n));
      ic += n;
      val.insert(val.end(), vls.begin() + static_cast<std::ptrdiff_t>(vc),
                 vls.begin() + static_cast<std::ptrdiff_t>(vc + n));
      vc += n;
    }
    row_ptr.push_back(static_cast<sparse::offset_t>(col_idx.size()));
  }
  sparse::CsrMatrix block(my_end - my_begin, global_->rows(),
                          std::move(row_ptr), std::move(col_idx),
                          std::move(val));

  // The engine keeps a pointer into matrix_, so replace the matrix first
  // and re-target the engine after (its thread team persists).
  matrix_ = std::make_unique<DistMatrix>(
      DistMatrix::from_local_block(new_comm, block, new_boundaries));
  if (engine_ == nullptr) {
    engine_ = std::make_unique<SpmvEngine>(*matrix_, threads_, variant_,
                                           options_);
  } else {
    engine_->rebuild(*matrix_);
  }

  last_rebuild_.rows_migrated = plan.rows_moved;
  last_rebuild_.rows_seeded = plan.rows_seeded;
  last_rebuild_.rows_kept = plan.rows_kept;
  last_rebuild_.rows_full_replication = plan.rows_full_replication;
  last_rebuild_.old_size = static_cast<int>(old_size);
  last_rebuild_.new_size = new_size;
  last_rebuild_.epoch = new_comm.epoch();
  last_rebuild_.rebuild_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  comm_ = std::move(new_comm);
  boundaries_ = std::move(new_boundaries);
  prev_plan_ = std::move(plan);
  prev_old_boundaries_ = std::move(old_boundaries);
  prev_old_owner_of_ = std::move(old_owner_of);
  prev_old_rank_ = my_old;
}

std::vector<sparse::value_t> RecoverableSpmv::migrate_vector(
    std::span<const sparse::value_t> old_owned) {
  if (prev_old_boundaries_.empty()) {
    throw std::logic_error(
        "RecoverableSpmv::migrate_vector: no rebuild to migrate across");
  }
  const int new_size = comm_.size();
  const int my_new = comm_.rank();
  const sparse::index_t old_begin =
      prev_old_rank_ >= 0
          ? prev_old_boundaries_[static_cast<std::size_t>(prev_old_rank_)]
          : 0;
  const sparse::index_t old_end =
      prev_old_rank_ >= 0
          ? prev_old_boundaries_[static_cast<std::size_t>(prev_old_rank_) + 1]
          : 0;
  if (old_owned.size() != static_cast<std::size_t>(old_end - old_begin)) {
    throw std::invalid_argument(
        "RecoverableSpmv::migrate_vector: old_owned must be the previous "
        "partition's owned slice (empty for joiners)");
  }
  std::vector<std::vector<sparse::value_t>> send(
      static_cast<std::size_t>(new_size));
  for (const MigrationMove& mv : prev_plan_.moves) {
    if (mv.source != my_new) continue;
    auto& bucket = send[static_cast<std::size_t>(mv.dest)];
    bucket.insert(bucket.end(),
                  old_owned.begin() + (mv.row_begin - old_begin),
                  old_owned.begin() + (mv.row_end - old_begin));
  }
  const auto recv = comm_.alltoallv(send);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(new_size), 0);
  const sparse::index_t my_begin =
      boundaries_[static_cast<std::size_t>(my_new)];
  const sparse::index_t my_end =
      boundaries_[static_cast<std::size_t>(my_new) + 1];
  // HSPMV-CHECK-ALLOW(first-touch): migration assembly buffer on the topology-change path; the rebuilt engine re-places hot data
  std::vector<sparse::value_t> result(
      static_cast<std::size_t>(my_end - my_begin), 0.0);
  for (sparse::index_t r = my_begin; r < my_end; ++r) {
    const auto ub = std::upper_bound(prev_old_boundaries_.begin(),
                                     prev_old_boundaries_.end(), r);
    const int s = static_cast<int>(ub - prev_old_boundaries_.begin()) - 1;
    const int owner = prev_old_owner_of_[static_cast<std::size_t>(s)];
    if (owner == my_new) {
      result[static_cast<std::size_t>(r - my_begin)] =
          old_owned[static_cast<std::size_t>(r - old_begin)];
    } else if (owner >= 0) {
      result[static_cast<std::size_t>(r - my_begin)] =
          recv[static_cast<std::size_t>(owner)]
              [cursor[static_cast<std::size_t>(owner)]++];
    }
    // owner < 0: the old owner died with the data; stays 0.0 for the
    // caller's checkpoint-restore to overwrite.
  }
  return result;
}

}  // namespace hspmv::spmv
