#include "spmv/engine.hpp"

#include <atomic>
#include <stdexcept>

#include "sparse/ell.hpp"
#include "sparse/kernels.hpp"
#include "util/timer.hpp"

namespace hspmv::spmv {

using sparse::index_t;
using sparse::value_t;

namespace {

/// CRS backend: contiguous nonzero-balanced row chunks — exactly the
/// engine's historical distribution.
class CsrLocalKernel final : public LocalKernel {
 public:
  CsrLocalKernel(const sparse::CsrMatrix& local, index_t local_cols,
                 int workers)
      : matrix_(local),
        local_cols_(local_cols),
        rows_(team::nnz_balanced_boundaries(local.row_ptr(), workers)) {}

  void full(int worker, std::span<const value_t> x,
            std::span<value_t> y) const override {
    sparse::spmv_rows(matrix_, begin(worker), end(worker), x, y);
  }
  void local(int worker, std::span<const value_t> x,
             std::span<value_t> y) const override {
    sparse::spmv_local_rows(matrix_, local_cols_, begin(worker), end(worker),
                            x, y);
  }
  void nonlocal(int worker, std::span<const value_t> x,
                std::span<value_t> y) const override {
    sparse::spmv_nonlocal_rows(matrix_, local_cols_, begin(worker),
                               end(worker), x, y);
  }

 private:
  [[nodiscard]] index_t begin(int worker) const {
    return static_cast<index_t>(rows_[static_cast<std::size_t>(worker)]);
  }
  [[nodiscard]] index_t end(int worker) const {
    return static_cast<index_t>(rows_[static_cast<std::size_t>(worker) + 1]);
  }

  const sparse::CsrMatrix& matrix_;
  index_t local_cols_;
  std::vector<std::int64_t> rows_;
};

/// SELL-C-sigma backend: contiguous slot-balanced chunk ranges. The SELL
/// kernels un-permute on the fly, so y is written in the engine's owned
/// row order — interchangeable with the CRS backend.
class SellLocalKernel final : public LocalKernel {
 public:
  SellLocalKernel(const sparse::CsrMatrix& local, index_t local_cols,
                  int workers, int chunk, int sigma)
      : matrix_(sparse::SellMatrix::from_csr(local, chunk, sigma)),
        local_cols_(local_cols),
        chunks_(team::nnz_balanced_boundaries(matrix_.chunk_offsets(),
                                              workers)) {}

  void full(int worker, std::span<const value_t> x,
            std::span<value_t> y) const override {
    matrix_.spmv_chunks(begin(worker), end(worker), x, y);
  }
  void local(int worker, std::span<const value_t> x,
             std::span<value_t> y) const override {
    matrix_.spmv_local_chunks(local_cols_, begin(worker), end(worker), x, y);
  }
  void nonlocal(int worker, std::span<const value_t> x,
                std::span<value_t> y) const override {
    matrix_.spmv_nonlocal_chunks(local_cols_, begin(worker), end(worker), x,
                                 y);
  }

 private:
  [[nodiscard]] index_t begin(int worker) const {
    return static_cast<index_t>(chunks_[static_cast<std::size_t>(worker)]);
  }
  [[nodiscard]] index_t end(int worker) const {
    return static_cast<index_t>(chunks_[static_cast<std::size_t>(worker) + 1]);
  }

  sparse::SellMatrix matrix_;
  index_t local_cols_;
  std::vector<std::int64_t> chunks_;
};

}  // namespace

LocalBackend parse_backend(const std::string& name) {
  if (name == "csr" || name == "crs") return LocalBackend::kCsr;
  if (name == "sell") return LocalBackend::kSell;
  throw std::invalid_argument("unknown kernel backend: " + name +
                              " (expected csr or sell)");
}

const char* backend_name(LocalBackend backend) {
  switch (backend) {
    case LocalBackend::kCsr:
      return "csr";
    case LocalBackend::kSell:
      return "sell";
  }
  return "?";
}

std::unique_ptr<LocalKernel> make_local_kernel(const DistMatrix& matrix,
                                               LocalBackend backend,
                                               int workers, int sell_chunk,
                                               int sell_sigma) {
  switch (backend) {
    case LocalBackend::kCsr:
      return std::make_unique<CsrLocalKernel>(matrix.local(),
                                              matrix.owned_rows(), workers);
    case LocalBackend::kSell:
      return std::make_unique<SellLocalKernel>(matrix.local(),
                                               matrix.owned_rows(), workers,
                                               sell_chunk, sell_sigma);
  }
  throw std::logic_error("make_local_kernel: unknown backend");
}

Timings& Timings::operator+=(const Timings& other) {
  gather_s += other.gather_s;
  comm_s += other.comm_s;
  local_s += other.local_s;
  nonlocal_s += other.nonlocal_s;
  total_s += other.total_s;
  return *this;
}

void SpmvEngine::set_trace(util::Timeline* trace, std::string lane_prefix) {
  trace_ = trace;
  trace_prefix_ = std::move(lane_prefix);
}

SpmvEngine::SpmvEngine(const DistMatrix& matrix, int threads, Variant variant,
                       EngineOptions options)
    : matrix_(matrix),
      variant_(variant),
      options_(options),
      team_(threads),
      compute_threads_(variant == Variant::kTaskMode ? threads - 1 : threads) {
  if (variant == Variant::kTaskMode && threads < 2) {
    throw std::invalid_argument(
        "SpmvEngine: task mode needs a communication thread plus at least "
        "one worker");
  }
  kernel_ = make_local_kernel(matrix, options_.backend, compute_threads_,
                              options_.sell_chunk, options_.sell_sigma);
  send_buffers_.resize(matrix.plan().send_blocks.size());
  for (std::size_t s = 0; s < send_buffers_.size(); ++s) {
    send_buffers_[s].resize(matrix.plan().send_blocks[s].gather.size());
  }
}

void SpmvEngine::post_recvs(DistVector& x,
                            std::vector<minimpi::Request>& requests) {
  auto halo = x.halo();
  for (const RecvBlock& block : matrix_.plan().recv_blocks) {
    requests.push_back(matrix_.comm().irecv(
        halo.subspan(static_cast<std::size_t>(block.halo_offset),
                     static_cast<std::size_t>(block.count)),
        block.peer));
  }
}

void SpmvEngine::gather_block(const SendBlock& block,
                              std::span<const value_t> owned,
                              std::size_t slot) {
  auto& buffer = send_buffers_[slot];
  for (std::size_t i = 0; i < block.gather.size(); ++i) {
    buffer[i] = owned[static_cast<std::size_t>(block.gather[i])];
  }
}

void SpmvEngine::post_sends(std::vector<minimpi::Request>& requests) {
  const auto& blocks = matrix_.plan().send_blocks;
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    requests.push_back(matrix_.comm().isend(
        std::span<const value_t>(send_buffers_[s].data(),
                                 send_buffers_[s].size()),
        blocks[s].peer));
  }
}

SpmvEngine::TrafficEstimate SpmvEngine::traffic_estimate() const {
  TrafficEstimate estimate;
  const auto& local = matrix_.local();
  const auto& plan = matrix_.plan();
  const auto nnz = static_cast<double>(local.nnz());
  const auto rows = static_cast<double>(local.rows());
  // Streaming arrays: val (8 B) + col_idx (4 B) per nonzero, row_ptr
  // (8 B) per row.
  estimate.matrix_bytes = nnz * 12.0 + rows * 8.0;
  // B loaded at least once (owned + halo), C write-allocate + evict.
  estimate.vector_bytes =
      8.0 * (rows + static_cast<double>(plan.halo_count)) + 16.0 * rows;
  if (variant_ != Variant::kVectorNoOverlap) {
    estimate.extra_c_bytes = 16.0 * rows;  // Eq. 2's second C sweep
  }
  estimate.comm_recv_bytes = 8.0 * static_cast<double>(plan.halo_count);
  estimate.comm_send_bytes = 8.0 * static_cast<double>(plan.send_elements());
  estimate.messages = static_cast<int>(plan.recv_blocks.size() +
                                       plan.send_blocks.size());
  return estimate;
}

Timings SpmvEngine::apply(DistVector& x, DistVector& y) {
  if (x.owned_size() != matrix_.owned_rows() ||
      y.owned_size() != matrix_.owned_rows()) {
    throw std::invalid_argument("SpmvEngine::apply: vector shape mismatch");
  }
  switch (variant_) {
    case Variant::kVectorNoOverlap:
      return apply_vector(x, y, /*naive_overlap=*/false);
    case Variant::kVectorNaiveOverlap:
      return apply_vector(x, y, /*naive_overlap=*/true);
    case Variant::kTaskMode:
      return apply_task_mode(x, y);
  }
  throw std::logic_error("SpmvEngine::apply: unknown variant");
}

Timings SpmvEngine::apply_vector(DistVector& x, DistVector& y,
                                 bool naive_overlap) {
  Timings t;
  util::Timer total;
  const auto& plan = matrix_.plan();

  std::vector<minimpi::Request> requests;
  requests.reserve(plan.recv_blocks.size() + plan.send_blocks.size());
  post_recvs(x, requests);

  // Gather the send buffers "after the receive has been initiated,
  // potentially hiding the cost of copying" (Sect. 3.1). One thread per
  // block; blocks are few and small relative to the kernel.
  {
    util::Timer timer;
    const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
    const auto owned_span = x.owned();
    for (std::size_t s = 0; s < plan.send_blocks.size(); ++s) {
      gather_block(plan.send_blocks[s], owned_span, s);
    }
    t.gather_s = timer.seconds();
    if (trace_ != nullptr) {
      trace_->record(trace_prefix_ + "t0", "gather (copy to send buffers)",
                     trace_begin, trace_->now(), 'g');
    }
  }
  post_sends(requests);

  const auto run_phase = [&](auto&& phase, const char* phase_label,
                             char glyph) {
    team_.execute([&](int id) {
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      phase(id);
      if (trace_ != nullptr) {
        trace_->record(trace_prefix_ + "t" + std::to_string(id), phase_label,
                       trace_begin, trace_->now(), glyph);
      }
    });
  };

  const auto traced_waitall = [&]() {
    util::Timer timer;
    const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
    matrix_.comm().wait_all(requests);
    if (trace_ != nullptr) {
      trace_->record(trace_prefix_ + "t0", "MPI_Waitall", trace_begin,
                     trace_->now(), 'W');
    }
    return timer.seconds();
  };

  if (!naive_overlap) {
    // Fig. 4(a): finish communication, then one full kernel sweep.
    t.comm_s = traced_waitall();
    util::Timer timer;
    run_phase([&](int id) { kernel_->full(id, x.full(), y.owned()); },
              "spMVM of all elements", '#');
    t.local_s = timer.seconds();
  } else {
    // Fig. 4(b): local part first — but with deferred progress nothing
    // moves until Waitall.
    {
      util::Timer timer;
      run_phase([&](int id) { kernel_->local(id, x.full(), y.owned()); },
                "spMVM: local elements", '#');
      t.local_s = timer.seconds();
    }
    t.comm_s = traced_waitall();
    util::Timer timer;
    run_phase([&](int id) { kernel_->nonlocal(id, x.full(), y.owned()); },
              "spMVM: non-local elements", 'n');
    t.nonlocal_s = timer.seconds();
  }
  t.total_s = total.seconds();
  return t;
}

Timings SpmvEngine::apply_task_mode(DistVector& x, DistVector& y) {
  Timings t;
  util::Timer total;
  const auto& plan = matrix_.plan();

  std::vector<minimpi::Request> requests;
  requests.reserve(plan.recv_blocks.size() + plan.send_blocks.size());
  post_recvs(x, requests);

  // Fig. 4(c): thread 0 is the communication thread. Workers gather the
  // send buffers, hit a barrier (comm thread included, so it may post the
  // sends), run the local kernel while the comm thread sits in Waitall,
  // hit the second barrier, then sweep the non-local elements.
  team::Barrier gather_done(team_.size());
  team::Barrier comm_done(team_.size());
  std::atomic<double> gather_seconds{0.0};
  std::atomic<double> local_seconds{0.0};
  const auto owned_span = x.owned();

  team_.execute([&](int id) {
    const std::string lane = trace_prefix_ + "t" + std::to_string(id);
    if (id == 0) {
      gather_done.arrive_and_wait();
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      // A failed halo exchange must not strand the workers at the
      // comm_done barrier: arrive first, rethrow after.
      std::exception_ptr comm_error;
      try {
        post_sends(requests);
        matrix_.comm().wait_all(requests);
      } catch (...) {
        comm_error = std::current_exception();
      }
      t.comm_s = timer.seconds();
      if (trace_ != nullptr) {
        trace_->record(lane, "comm thread: MPI_Isend + MPI_Waitall",
                       trace_begin, trace_->now(), 'W');
      }
      comm_done.arrive_and_wait();
      if (comm_error) std::rethrow_exception(comm_error);
      // "One thread executes MPI calls only" — the communication thread
      // does not join the non-local sweep.
      return;
    }
    const int worker = id - 1;
    {
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      // Distribute the gather lists over workers by block.
      for (std::size_t s = static_cast<std::size_t>(worker);
           s < plan.send_blocks.size();
           s += static_cast<std::size_t>(compute_threads_)) {
        gather_block(plan.send_blocks[s], owned_span, s);
      }
      if (trace_ != nullptr) {
        trace_->record(lane, "gather (copy to send buffers)", trace_begin,
                       trace_->now(), 'g');
      }
      const double mine = timer.seconds();
      double previous = gather_seconds.load();
      while (previous < mine &&
             !gather_seconds.compare_exchange_weak(previous, mine)) {
      }
    }
    gather_done.arrive_and_wait();
    {
      util::Timer timer;
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      kernel_->local(worker, x.full(), y.owned());
      if (trace_ != nullptr) {
        trace_->record(lane, "spMVM: local elements", trace_begin,
                       trace_->now(), '#');
      }
      const double mine = timer.seconds();
      double previous = local_seconds.load();
      while (previous < mine &&
             !local_seconds.compare_exchange_weak(previous, mine)) {
      }
    }
    comm_done.arrive_and_wait();
    {
      const double trace_begin = trace_ != nullptr ? trace_->now() : 0.0;
      kernel_->nonlocal(worker, x.full(), y.owned());
      if (trace_ != nullptr) {
        trace_->record(lane, "spMVM: non-local elements", trace_begin,
                       trace_->now(), 'n');
      }
    }
  });

  t.gather_s = gather_seconds.load();
  t.local_s = local_seconds.load();
  t.total_s = total.seconds();
  return t;
}

}  // namespace hspmv::spmv
