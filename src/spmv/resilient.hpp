// Recoverable distributed spMVM: the engine plus everything needed to
// rebuild it over the survivors after a rank failure — and, since the
// elastic-capacity work, to *expand* onto freshly spawned ranks.
//
// The plain SpmvEngine is pinned to one DistMatrix on one communicator;
// when a rank dies, that communicator is revoked and the partition it
// encodes references a member that no longer exists. RecoverableSpmv
// keeps the ingredients — the replicated global matrix and the partition
// strategy — so recovery is deterministic re-derivation, not improvised
// state surgery: shrink (or grow) the communicator, repartition the same
// global matrix over the new size with the same strategy, rebuild the
// DistMatrix (fresh halo plan) and re-target the engine's kernel onto
// the new row block. Every member computes the identical boundaries, so
// no coordination beyond the topology change itself is needed.
//
// Rebuilds are *incremental*: instead of every rank re-extracting its
// whole new block from the replicated seed, the old->new ownership delta
// is computed (spmv/partition.hpp plan_migration) and only rows that
// changed owner travel, via one alltoallv pair. Rows that stayed put are
// copied locally; only rows whose old owner is gone (dead) fall back to
// the seed. The resulting DistMatrix is bitwise-identical to the full
// re-replication path — values are copies of copies of the same seed —
// so the determinism guarantee survives: a post-grow (or post-shrink)
// run computes the same bits as a calm run at the new size.
//
// The resilient solver drivers (src/solvers/resilient.hpp) own one of
// these per rank and combine it with buddy checkpointing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "spmv/engine.hpp"
#include "spmv/partition.hpp"

namespace hspmv::spmv {

/// What the most recent topology-change rebuild did. Every field is
/// identical on every rank — the counts come from the shared migration
/// plan, not local measurements (except rebuild_seconds, which is local
/// wall clock).
struct RebuildStats {
  std::int64_t rows_migrated = 0;  ///< rows moved between live ranks
  std::int64_t rows_seeded = 0;    ///< rows re-extracted from the seed
  std::int64_t rows_kept = 0;      ///< rows that never left their rank
  /// What the pre-elastic full re-replication path would have touched
  /// (= global rows); the incremental path must stay strictly below it
  /// whenever any row survives in place.
  std::int64_t rows_full_replication = 0;
  int old_size = 0;
  int new_size = 0;
  double rebuild_seconds = 0.0;
  std::uint64_t epoch = 0;  ///< failure epoch of the new topology
};

class RecoverableSpmv {
 public:
  /// Tag for the joiner-side constructor (ranks created by Comm::spawn).
  struct JoinerTag {};

  /// Collective over `comm`: partition `global` by balanced nonzeros
  /// over comm.size() ranks and build the distributed engine. `global`
  /// must outlive this object (it is the recovery seed).
  RecoverableSpmv(minimpi::Comm comm, const sparse::CsrMatrix& global,
                  int threads, Variant variant, EngineOptions options = {});

  /// Joiner-side constructor: called from a Comm::spawn joiner_main with
  /// the *grown* communicator, while the old members concurrently run
  /// rebuild() on it. Participates in the same incremental-migration
  /// collective — the joiner starts with no old block and receives its
  /// rows from the survivors that used to own them. `global` is the same
  /// replicated seed the founders hold (it must outlive this object).
  RecoverableSpmv(JoinerTag, minimpi::Comm grown,
                  const sparse::CsrMatrix& global, int threads,
                  Variant variant, EngineOptions options = {});

  /// Forwarded engine surface. Timings carry the elastic counters of the
  /// most recent topology change (rows_migrated/rows_full_replication).
  Timings apply(DistVector& x, DistVector& y) {
    return stamp(engine_->apply(x, y));
  }
  /// Blocked multi-RHS apply (see SpmvEngine::apply(MultiVector&, ...)).
  Timings apply(MultiVector& x, MultiVector& y) {
    return stamp(engine_->apply(x, y));
  }
  [[nodiscard]] DistVector make_vector() { return engine_->make_vector(); }
  [[nodiscard]] MultiVector make_multi_vector(int width) {
    return engine_->make_multi_vector(width);
  }
  [[nodiscard]] SpmvEngine& engine() { return *engine_; }
  [[nodiscard]] const DistMatrix& matrix() const { return *matrix_; }
  [[nodiscard]] const minimpi::Comm& comm() const { return comm_; }
  [[nodiscard]] const sparse::CsrMatrix& global() const { return *global_; }
  /// Current row boundaries (comm.size()+1 entries).
  [[nodiscard]] std::span<const sparse::index_t> boundaries() const {
    return boundaries_;
  }

  /// Collective over `new_comm` (shrunk survivors or grown membership):
  /// deterministically repartition the global matrix over the new size
  /// and rebuild the distributed state on it, migrating only rows whose
  /// owner changed. Old DistVectors are invalid afterwards — use
  /// migrate_vector() to carry their contents across.
  void rebuild(minimpi::Comm new_comm);

  /// Shrink the current (revoked) communicator and rebuild on the
  /// result, retrying the shrink when membership changes mid-flight
  /// (another death aborts the rendezvous with FaultError; the next
  /// attempt runs under the new epoch). Collective among survivors.
  void shrink_and_rebuild();

  /// Grow by `extra` fresh ranks (Comm::spawn) and rebuild on the grown
  /// communicator. `joiner_main` runs on each new rank; it must
  /// construct a RecoverableSpmv with JoinerTag on the communicator it
  /// receives (that constructor is the joiner's half of this rebuild's
  /// migration collective) and then mirror whatever collective sequence
  /// the survivors run next. Collective over the current membership.
  void grow_and_rebuild(int extra,
                        const std::function<void(minimpi::Comm&)>& joiner_main);

  /// Redistribute the owned slice of a vector across the most recent
  /// rebuild(): `old_owned` is this rank's slice under the *previous*
  /// partition (empty for joiners and for rows lost with a dead rank),
  /// the result is this rank's slice under the current one. Rows whose
  /// old owner is gone come back as 0.0 — callers restore those from
  /// checkpoints. Collective; bitwise-exact for every migrated row.
  [[nodiscard]] std::vector<sparse::value_t> migrate_vector(
      std::span<const sparse::value_t> old_owned);

  /// Stats of the most recent topology-change rebuild (all-zero until
  /// the first rebuild()).
  [[nodiscard]] const RebuildStats& last_rebuild() const {
    return last_rebuild_;
  }

 private:
  void build();
  /// The incremental-migration collective both rebuild() and the joiner
  /// constructor run: agree on the old partition (broadcast from new
  /// rank 0 — always an old member), plan the delta, exchange moved
  /// rows, assemble the new local block, re-target the engine.
  void migrate_build(minimpi::Comm new_comm, bool joiner);

  Timings stamp(Timings t) const {
    t.rows_migrated = last_rebuild_.rows_migrated;
    t.rows_full_replication = last_rebuild_.rows_full_replication;
    return t;
  }

  minimpi::Comm comm_;
  const sparse::CsrMatrix* global_;
  int threads_;
  Variant variant_;
  EngineOptions options_;
  std::vector<sparse::index_t> boundaries_;
  std::unique_ptr<DistMatrix> matrix_;
  std::unique_ptr<SpmvEngine> engine_;

  // ---- elastic state: the most recent migration, kept so vectors can
  // follow the rows after the matrix already moved ----
  RebuildStats last_rebuild_;
  MigrationPlan prev_plan_;
  std::vector<sparse::index_t> prev_old_boundaries_;
  std::vector<int> prev_old_owner_of_;
  int prev_old_rank_ = -1;  ///< my rank in the old topology (-1: joiner)
};

}  // namespace hspmv::spmv
