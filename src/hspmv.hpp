// Umbrella header: the public API of the hspmv toolkit.
//
// Fine-grained headers remain available for selective inclusion; this
// header is the convenient "give me everything" entry point used by the
// examples.
#pragma once

// Utilities
#include "util/aligned.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timeline.hpp"
#include "util/timer.hpp"

// Sparse matrices and kernels
#include "sparse/binary_io.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/kernels.hpp"
#include "sparse/mmio.hpp"
#include "sparse/occupancy.hpp"
#include "sparse/rcm.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/stats.hpp"
#include "sparse/symmetric.hpp"
#include "sparse/vector_ops.hpp"

// Matrix generators
#include "matgen/combinatorics.hpp"
#include "matgen/heisenberg.hpp"
#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"

// Message-passing runtime and thread teams
#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/types.hpp"
#include "team/thread_team.hpp"

// Distributed spMVM (the paper's contribution)
#include "spmv/comm_plan.hpp"
#include "spmv/dist_matrix.hpp"
#include "spmv/dist_vector.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/symmetric_engine.hpp"

// Performance models and simulators
#include "cachesim/cache.hpp"
#include "cachesim/spmv_traffic.hpp"
#include "cluster/cluster_model.hpp"
#include "machine/node_spec.hpp"
#include "netmodel/network.hpp"
#include "perfmodel/code_balance.hpp"
#include "perfmodel/saturation.hpp"
#include "perfmodel/stream.hpp"

// Solvers
#include "solvers/amg.hpp"
#include "solvers/cg.hpp"
#include "solvers/chebyshev.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/operator.hpp"
#include "solvers/tridiag.hpp"
