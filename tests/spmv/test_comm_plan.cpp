#include "spmv/comm_plan.hpp"

#include <gtest/gtest.h>

#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "spmv/partition.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;

TEST(OwnerOf, MapsColumnsToParts) {
  const std::vector<index_t> boundaries{0, 3, 3, 7, 10};
  EXPECT_EQ(owner_of(boundaries, 0), 0);
  EXPECT_EQ(owner_of(boundaries, 2), 0);
  // Part 1 is empty; column 3 belongs to part 2.
  EXPECT_EQ(owner_of(boundaries, 3), 2);
  EXPECT_EQ(owner_of(boundaries, 6), 2);
  EXPECT_EQ(owner_of(boundaries, 9), 3);
}

TEST(AnalyzePartition, TridiagonalNeighborsOnly) {
  const CsrMatrix a = matgen::laplacian1d(100);
  const std::vector<index_t> boundaries{0, 25, 50, 75, 100};
  const auto stats = analyze_partition(a, boundaries);
  // Each interior part needs exactly 1 element from each side neighbour.
  ASSERT_EQ(stats.recv_from.size(), 4u);
  EXPECT_EQ(stats.recv_from[0].size(), 1u);
  EXPECT_EQ(stats.recv_from[1].size(), 2u);
  EXPECT_EQ(stats.recv_from[1][0].first, 0);
  EXPECT_EQ(stats.recv_from[1][0].second, 1);
  EXPECT_EQ(stats.recv_from[1][1].first, 2);
  EXPECT_EQ(stats.total_halo_elements(), 6);
  // local + nonlocal nnz account for everything.
  std::int64_t total = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    total += stats.local_nnz[p] + stats.nonlocal_nnz[p];
  }
  EXPECT_EQ(total, a.nnz());
  // Each part boundary cuts exactly one symmetric coupling pair.
  EXPECT_EQ(stats.nonlocal_nnz[0], 1);
  EXPECT_EQ(stats.nonlocal_nnz[1], 2);
}

TEST(AnalyzePartition, HolsteinHasHeavierCommThanPoisson) {
  // The paper's central contrast: HMeP communicates much more than sAMG.
  matgen::HolsteinHubbardParams hp;
  hp.sites = 4;
  hp.electrons_up = 2;
  hp.electrons_down = 2;
  hp.phonon_modes = 3;
  hp.max_phonons = 3;
  const CsrMatrix holstein = matgen::holstein_hubbard(hp);
  const CsrMatrix poisson =
      matgen::poisson7({.nx = 16, .ny = 16, .nz = 16});

  const int parts = 8;
  const auto hb =
      partition_rows(holstein, parts, PartitionStrategy::kBalancedNonzeros);
  const auto pb =
      partition_rows(poisson, parts, PartitionStrategy::kBalancedNonzeros);
  const auto hs = analyze_partition(holstein, hb);
  const auto ps = analyze_partition(poisson, pb);

  const double h_ratio =
      static_cast<double>(hs.total_halo_elements()) / holstein.rows();
  const double p_ratio =
      static_cast<double>(ps.total_halo_elements()) / poisson.rows();
  EXPECT_GT(h_ratio, 1.5 * p_ratio);
}

TEST(BuildLocalPlan, RelabelsAndSplitsCorrectly) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const std::vector<index_t> boundaries{0, 4, 10};
  const CsrMatrix block = a.row_block(0, 4);
  const LocalPlan lp = build_local_plan(block, boundaries, 0);

  EXPECT_EQ(lp.plan.local_rows, 4);
  EXPECT_EQ(lp.plan.halo_count, 1);  // needs global column 4
  ASSERT_EQ(lp.halo_globals.size(), 1u);
  EXPECT_EQ(lp.halo_globals[0], 4);
  ASSERT_EQ(lp.plan.recv_blocks.size(), 1u);
  EXPECT_EQ(lp.plan.recv_blocks[0].peer, 1);
  EXPECT_EQ(lp.plan.recv_blocks[0].count, 1);

  // Relabeled matrix: 4 rows, 5 columns (4 owned + 1 halo).
  EXPECT_EQ(lp.matrix.rows(), 4);
  EXPECT_EQ(lp.matrix.cols(), 5);
  // Row 3 was (-1 at col 2, 2 at col 3, -1 at col 4-global) -> halo slot 4.
  const auto [cols, vals] = lp.matrix.row(3);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 2);
  EXPECT_EQ(cols[1], 3);
  EXPECT_EQ(cols[2], 4);
  EXPECT_DOUBLE_EQ(vals[2], -1.0);
}

TEST(BuildLocalPlan, RowsSortedAfterRelabel) {
  // Property over random matrices: every row of the relabeled block has
  // strictly ascending columns (split-kernel invariant).
  const CsrMatrix a = matgen::random_sparse(300, 7, 11);
  const auto boundaries =
      partition_rows(a, 5, PartitionStrategy::kBalancedNonzeros);
  for (int part = 0; part < 5; ++part) {
    const CsrMatrix block = a.row_block(
        boundaries[static_cast<std::size_t>(part)],
        boundaries[static_cast<std::size_t>(part) + 1]);
    const LocalPlan lp = build_local_plan(block, boundaries, part);
    for (index_t i = 0; i < lp.matrix.rows(); ++i) {
      const auto [cols, vals] = lp.matrix.row(i);
      for (std::size_t k = 1; k < cols.size(); ++k) {
        ASSERT_LT(cols[k - 1], cols[k])
            << "part " << part << " row " << i;
      }
    }
    EXPECT_EQ(lp.matrix.nnz(), block.nnz());
  }
}

TEST(BuildLocalPlan, HaloRunsContiguousPerPeer) {
  const CsrMatrix a = matgen::random_sparse(200, 6, 13);
  const auto boundaries =
      partition_rows(a, 4, PartitionStrategy::kBalancedRows);
  const CsrMatrix block = a.row_block(boundaries[1], boundaries[2]);
  const LocalPlan lp = build_local_plan(block, boundaries, 1);
  index_t covered = 0;
  int previous_peer = -1;
  for (const RecvBlock& rb : lp.plan.recv_blocks) {
    EXPECT_EQ(rb.halo_offset, covered);
    EXPECT_GT(rb.peer, previous_peer);  // ascending, no duplicates
    EXPECT_NE(rb.peer, 1);              // never from myself
    previous_peer = rb.peer;
    covered += rb.count;
  }
  EXPECT_EQ(covered, lp.plan.halo_count);
}

TEST(BuildLocalPlan, MiddlePartHaloOrderedByGlobalColumn) {
  const CsrMatrix a = matgen::laplacian1d(9);
  const std::vector<index_t> boundaries{0, 3, 6, 9};
  const CsrMatrix block = a.row_block(3, 6);
  const LocalPlan lp = build_local_plan(block, boundaries, 1);
  // Needs col 2 (from part 0) and col 6 (from part 2), in that order.
  ASSERT_EQ(lp.halo_globals.size(), 2u);
  EXPECT_EQ(lp.halo_globals[0], 2);
  EXPECT_EQ(lp.halo_globals[1], 6);
  ASSERT_EQ(lp.plan.recv_blocks.size(), 2u);
  EXPECT_EQ(lp.plan.recv_blocks[0].peer, 0);
  EXPECT_EQ(lp.plan.recv_blocks[1].peer, 2);
  // Row 0 (global row 3) references global cols 2,3,4 -> relabeled:
  // halo slot 3 (= local_rows + 0), owned 0, owned 1 -> sorted 0,1,3.
  const auto [cols, vals] = lp.matrix.row(0);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 1);
  EXPECT_EQ(cols[2], 3);
}

TEST(BuildLocalPlan, NoHaloForBlockDiagonalMatrix) {
  sparse::CooBuilder b(6, 6);
  for (index_t i = 0; i < 6; ++i) b.add(i, i, 1.0);
  b.add_symmetric(0, 1, -1.0);
  b.add_symmetric(4, 5, -1.0);
  const CsrMatrix a(6, 6, b.finish());
  const std::vector<index_t> boundaries{0, 3, 6};
  const LocalPlan lp =
      build_local_plan(a.row_block(0, 3), boundaries, 0);
  EXPECT_EQ(lp.plan.halo_count, 0);
  EXPECT_TRUE(lp.plan.recv_blocks.empty());
}

TEST(BuildLocalPlan, BadArgsThrow) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const std::vector<index_t> boundaries{0, 5, 10};
  const CsrMatrix block = a.row_block(0, 5);
  EXPECT_THROW((void)build_local_plan(block, boundaries, 2),
               std::invalid_argument);
  const CsrMatrix wrong_size = a.row_block(0, 4);
  EXPECT_THROW((void)build_local_plan(wrong_size, boundaries, 1),
               std::invalid_argument);  // 4 rows cannot be part 1's block
}

}  // namespace
}  // namespace hspmv::spmv
