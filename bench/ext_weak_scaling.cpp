// EXP-E2 (extension) — weak scaling of the sAMG-like problem.
//
// The paper studies strong scaling only; the model naturally answers the
// weak-scaling question too: grow the grid with the node count (constant
// rows per node) and watch the time per spMVM. A flat line is perfect
// weak scaling; the gap between variants shows how much of the growing
// halo each one hides.

#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "matgen/poisson.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("ext_weak_scaling",
                      "extension: weak scaling (model) on growing grids");
  cli.add_option("base", "32", "grid edge at 1 node");
  cli.add_option("max-nodes", "32", "largest node count");
  if (!cli.parse(argc, argv)) return 1;
  const int base = static_cast<int>(cli.get_int("base"));

  const cluster::ClusterModel model(cluster::westmere_cluster());
  std::printf(
      "EXP-E2 — weak scaling, 7-point Poisson, ~%d^3 cells per node "
      "(Westmere cluster model, per-LD mapping)\n\n",
      base);

  util::Table table({"nodes", "grid", "N", "vector w/o ovl [ms]",
                     "task mode [ms]", "weak efficiency (vector)"});
  double reference_ms = 0.0;
  for (int nodes = 1; nodes <= cli.get_int("max-nodes"); nodes *= 2) {
    // Edge grows as cbrt(nodes) to keep rows/node constant.
    const int edge = static_cast<int>(
        std::lround(base * std::cbrt(static_cast<double>(nodes))));
    const auto matrix = matgen::poisson7({.nx = edge, .ny = edge, .nz = edge});

    cluster::ScenarioParams params;
    params.mapping = cluster::HybridMapping::kProcessPerDomain;
    params.kappa = 0.7;
    params.volume_scale = 1.0;  // the instance IS the problem here

    params.variant = cluster::KernelVariant::kVectorNoOverlap;
    const auto vector = model.predict(matrix, nodes, params);
    params.variant = cluster::KernelVariant::kTaskMode;
    const auto task = model.predict(matrix, nodes, params);

    if (nodes == 1) reference_ms = vector.time_s * 1e3;
    table.add_row(
        {util::Table::cell(static_cast<std::int64_t>(nodes)),
         std::to_string(edge) + "^3",
         util::Table::cell(static_cast<std::int64_t>(matrix.rows())),
         util::Table::cell(vector.time_s * 1e3, 3),
         util::Table::cell(task.time_s * 1e3, 3),
         util::Table::cell(reference_ms / (vector.time_s * 1e3) * 100.0, 1) +
             "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected: near-flat time per spMVM (surface-to-volume halo growth "
      "only); task mode absorbs most of the halo cost.\n");
  return 0;
}
