// Recovery tier for the distributed engine (docs/resilience.md):
// transient halo-exchange faults absorbed by the retry/backoff layer must
// be invisible — bitwise-identical results, zero validator diagnostics —
// while permanent rank deaths must surface as FaultError{kPermanent} and
// leave the survivors able to shrink the communicator, deterministically
// repartition, and produce the same bits as a calm run at the survivor
// count.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "common/seeded_fixture.hpp"
#include "matgen/random_matrix.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/resilient.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::value_t;

class EngineRecover : public testutil::SeededTest {};

class EngineRecoverPair
    : public testutil::SeededParamTest<std::tuple<Variant, LocalBackend>> {};

/// Fast-backoff retry policy so the sweeps don't sleep their way through
/// CI; semantics identical to the defaults.
RetryPolicy test_retry() {
  RetryPolicy retry;
  retry.enabled = true;
  retry.max_attempts = 4;
  retry.base_backoff_seconds = 1e-5;
  retry.max_backoff_seconds = 1e-4;
  return retry;
}

/// Matched-transfer count of one calm apply (DistMatrix construction is
/// collectives-only, so all match indices belong to the halo exchange) —
/// the valid index window for transient-failure injection.
std::uint64_t probe_messages(const CsrMatrix& a, int threads, Variant variant,
                             const EngineOptions& engine_options, int ranks) {
  minimpi::RuntimeOptions options;
  options.ranks = ranks;
  const auto x = testutil::random_vector(static_cast<std::size_t>(a.cols()), 1);
  return minimpi::run(options,
                      [&](minimpi::Comm& comm) {
                        const auto boundaries = partition_rows(
                            a, comm.size(),
                            PartitionStrategy::kBalancedNonzeros);
                        DistMatrix dist(comm, a, boundaries);
                        DistVector xd(dist), yd(dist);
                        xd.assign_from_global(x, dist.row_begin());
                        SpmvEngine engine(dist, threads, variant,
                                          engine_options);
                        engine.apply(xd, yd);
                      })
      .messages;
}

TEST_P(EngineRecoverPair, TransientFaultsAreBitwiseInvisible) {
  // The retry property: a transient transfer failure plus redelivery may
  // change scheduling only, never numbers — 20 chaos seeds spread the
  // failed match index over the whole apply, on top of the standard
  // chaos intensities (holds, reordering, jitter, test() lies).
  const auto [variant, backend] = GetParam();
  constexpr int kRanks = 4;
  const int threads = variant == Variant::kTaskMode ? 3 : 2;
  EngineOptions engine_options;
  engine_options.backend = backend;
  engine_options.retry = test_retry();

  const CsrMatrix a = matgen::random_banded(180, 24, 6, seed(1));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(2));
  const auto expected = testutil::sequential_reference(a, x);

  minimpi::RuntimeOptions calm;
  calm.ranks = kRanks;
  const auto baseline = testutil::distributed_product(a, x, threads, variant,
                                                      calm, engine_options);
  ASSERT_LT(testutil::max_abs_diff(baseline, expected), 1e-12);

  const std::uint64_t messages =
      probe_messages(a, threads, variant, engine_options, kRanks);
  ASSERT_GT(messages, 1u);

  std::atomic<std::size_t> diagnostics{0};
  for (std::uint64_t s = 0; s < 20; ++s) {
    minimpi::RuntimeOptions options;
    options.ranks = kRanks;
    options.progress = s % 2 == 0 ? minimpi::ProgressMode::kDeferred
                                  : minimpi::ProgressMode::kAsync;
    options.chaos = minimpi::ChaosConfig::standard(seed(100 + s));
    options.chaos.failure_mode = minimpi::ChaosConfig::FailureMode::kTransient;
    options.chaos.fail_transfer_index = messages * s / 20;
    options.validate.enabled = true;
    options.validate.on_diagnostic =
        [&](const minimpi::Diagnostic&) { ++diagnostics; };
    const auto chaotic = testutil::distributed_product(
        a, x, threads, variant, options, engine_options);
    ASSERT_EQ(chaotic, baseline)
        << "chaos seed " << options.chaos.seed << ", fail index "
        << options.chaos.fail_transfer_index;
  }
  EXPECT_EQ(diagnostics.load(), 0u);
}

TEST_P(EngineRecoverPair, PermanentDeathShrinkRebuildMatchesCalmRun) {
  // One rank dies mid-run. Survivors must observe FaultError{kPermanent},
  // shrink, deterministically repartition, and then compute bit-for-bit
  // what a calm run at the survivor count computes. The validator rides
  // along: recovery must produce zero diagnostics (no leak/deadlock false
  // positives from the dead rank's traffic).
  const auto [variant, backend] = GetParam();
  constexpr int kRanks = 4;
  constexpr int kVictim = 1;
  const int threads = variant == Variant::kTaskMode ? 3 : 2;
  EngineOptions engine_options;
  engine_options.backend = backend;
  engine_options.retry = test_retry();

  const CsrMatrix a = matgen::random_banded(160, 20, 5, seed(3));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(4));
  const auto expected = testutil::sequential_reference(a, x);

  std::atomic<std::size_t> diagnostics{0};
  minimpi::RuntimeOptions options;
  options.ranks = kRanks;
  options.validate.enabled = true;
  options.validate.on_diagnostic =
      [&](const minimpi::Diagnostic&) { ++diagnostics; };

  std::vector<value_t> result(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex result_mutex;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    RecoverableSpmv op(comm, a, threads, variant, engine_options);
    DistVector xd = op.make_vector();
    DistVector yd = op.make_vector();
    try {
      xd.assign_from_global(x, op.matrix().row_begin());
      op.apply(xd, yd);  // pre-failure apply on the full world
      if (comm.rank() == kVictim) comm.simulate_rank_failure();
      // The revocation may land while a slower survivor is still inside
      // its own first apply, or only once it waits in the barrier for the
      // member that will never arrive — either way it must be a
      // permanent FaultError, never a hang.
      comm.barrier();
      ADD_FAILURE() << "rank " << comm.rank()
                    << " observed no fault after the death";
      return;
    } catch (const minimpi::FaultError& fault) {
      EXPECT_EQ(fault.kind(), minimpi::FaultKind::kPermanent);
      if (comm.rank() == kVictim) {
        EXPECT_EQ(fault.rank(), kVictim);
        return;  // dead: must not abort the board via run()'s rethrow
      }
    }

    op.shrink_and_rebuild();
    EXPECT_EQ(op.comm().size(), kRanks - 1);
    // Every survivor re-derives the partition locally — no coordination.
    const auto boundaries = partition_rows(
        a, kRanks - 1, PartitionStrategy::kBalancedNonzeros);
    ASSERT_EQ(op.boundaries().size(), boundaries.size());
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      EXPECT_EQ(op.boundaries()[i], boundaries[i]);
    }

    xd = op.make_vector();
    yd = op.make_vector();
    xd.assign_from_global(x, op.matrix().row_begin());
    op.apply(xd, yd);
    std::lock_guard<std::mutex> lock(result_mutex);
    for (sparse::index_t i = 0; i < op.matrix().owned_rows(); ++i) {
      result[static_cast<std::size_t>(op.matrix().row_begin() + i)] =
          yd.owned()[static_cast<std::size_t>(i)];
    }
  });

  EXPECT_LT(testutil::max_abs_diff(result, expected), 1e-12);
  // Determinism of the rebuilt pipeline: identical bits to a world that
  // was born with kRanks - 1 members.
  minimpi::RuntimeOptions calm;
  calm.ranks = kRanks - 1;
  EXPECT_EQ(result, testutil::distributed_product(a, x, threads, variant, calm,
                                                  engine_options));
  EXPECT_EQ(diagnostics.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsTimesBackends, EngineRecoverPair,
    ::testing::Combine(::testing::Values(Variant::kVectorNoOverlap,
                                         Variant::kVectorNaiveOverlap,
                                         Variant::kTaskMode),
                       ::testing::Values(LocalBackend::kCsr,
                                         LocalBackend::kSell)));

TEST_F(EngineRecover, TransientRetriesAreCountedInTimings) {
  constexpr int kRanks = 4;
  const CsrMatrix a = matgen::random_banded(120, 16, 4, seed(5));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(6));
  const auto expected = testutil::sequential_reference(a, x);
  EngineOptions engine_options;
  engine_options.retry = test_retry();

  minimpi::RuntimeOptions options;
  options.ranks = kRanks;
  options.chaos.enabled = true;
  options.chaos.seed = seed(7);
  options.chaos.match_hold_probability = 0.0;
  options.chaos.reorder_probability = 0.0;
  options.chaos.barrier_jitter_probability = 0.0;
  options.chaos.spurious_test_probability = 0.0;
  options.chaos.failure_mode = minimpi::ChaosConfig::FailureMode::kTransient;
  options.chaos.fail_transfer_index = 0;

  std::atomic<std::int64_t> retries{0};
  std::vector<value_t> result(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex result_mutex;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedNonzeros);
    DistMatrix dist(comm, a, boundaries);
    DistVector xd(dist), yd(dist);
    xd.assign_from_global(x, dist.row_begin());
    SpmvEngine engine(dist, 2, Variant::kVectorNoOverlap, engine_options);
    const Timings t = engine.apply(xd, yd);
    retries.fetch_add(t.retries);
    std::lock_guard<std::mutex> lock(result_mutex);
    for (sparse::index_t i = 0; i < dist.owned_rows(); ++i) {
      result[static_cast<std::size_t>(dist.row_begin() + i)] =
          yd.owned()[static_cast<std::size_t>(i)];
    }
  });
  EXPECT_LT(testutil::max_abs_diff(result, expected), 1e-12);
  EXPECT_GE(retries.load(), 1);
}

TEST_F(EngineRecover, RetriesExhaustedEscalateAsTransientFault) {
  // Every repost re-fails (huge fail window): after max_attempts the
  // engine must give up and rethrow the FaultError with kind kTransient —
  // bounded-attempt escalation, not an infinite repost loop.
  constexpr int kRanks = 4;
  const CsrMatrix a = matgen::random_banded(120, 16, 4, seed(8));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(9));
  EngineOptions engine_options;
  engine_options.retry = test_retry();
  engine_options.retry.max_attempts = 2;

  minimpi::RuntimeOptions options;
  options.ranks = kRanks;
  options.chaos.enabled = true;
  options.chaos.seed = seed(10);
  options.chaos.match_hold_probability = 0.0;
  options.chaos.reorder_probability = 0.0;
  options.chaos.barrier_jitter_probability = 0.0;
  options.chaos.spurious_test_probability = 0.0;
  options.chaos.failure_mode = minimpi::ChaosConfig::FailureMode::kTransient;
  options.chaos.fail_transfer_index = 0;
  options.chaos.fail_transfer_count = 1u << 20;

  std::atomic<int> transient_throwers{0};
  EXPECT_THROW(
      minimpi::run(options,
                   [&](minimpi::Comm& comm) {
                     const auto boundaries = partition_rows(
                         a, comm.size(),
                         PartitionStrategy::kBalancedNonzeros);
                     DistMatrix dist(comm, a, boundaries);
                     DistVector xd(dist), yd(dist);
                     xd.assign_from_global(x, dist.row_begin());
                     SpmvEngine engine(dist, 2, Variant::kVectorNoOverlap,
                                       engine_options);
                     try {
                       engine.apply(xd, yd);
                       comm.barrier();
                     } catch (const minimpi::FaultError& fault) {
                       if (fault.kind() == minimpi::FaultKind::kTransient) {
                         transient_throwers.fetch_add(1);
                       }
                       throw;
                     }
                   }),
      std::runtime_error);
  EXPECT_GE(transient_throwers.load(), 1);
}

TEST_F(EngineRecover, HeartbeatDeclaresSilentRankDead) {
  // A rank that stops participating without an error (returns from its
  // rank_main) must be declared dead by the failure detector, not hang
  // its peers: the halo wait throws FaultError{kPermanent, victim}, and
  // the survivors can shrink and carry on.
  constexpr int kRanks = 3;
  constexpr int kVictim = 2;
  const CsrMatrix a = matgen::random_banded(90, 12, 4, seed(11));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(12));

  minimpi::RuntimeOptions options;
  options.ranks = kRanks;
  // Generous timeout: detection latency is all it costs, while a tight
  // one risks declaring a merely descheduled rank dead on loaded or
  // sanitizer-slowed machines.
  options.heartbeat_timeout_seconds = 1.5;

  std::atomic<int> permanent_faults{0};
  minimpi::run(options, [&](minimpi::Comm& comm) {
    RecoverableSpmv op(comm, a, 2, Variant::kVectorNoOverlap);
    DistVector xd = op.make_vector();
    DistVector yd = op.make_vector();
    try {
      xd.assign_from_global(x, op.matrix().row_begin());
      op.apply(xd, yd);
      if (comm.rank() == kVictim) return;  // silent death: no error

      xd.assign_from_global(x, op.matrix().row_begin());
      op.apply(xd, yd);
      // A survivor not adjacent to the victim may finish this apply; the
      // barrier then faces the dead member directly.
      comm.barrier();
      ADD_FAILURE() << "silent death went undetected";
      return;
    } catch (const minimpi::FaultError& fault) {
      EXPECT_EQ(fault.kind(), minimpi::FaultKind::kPermanent);
      permanent_faults.fetch_add(1);
    }
    op.shrink_and_rebuild();
    EXPECT_EQ(op.comm().size(), kRanks - 1);
    EXPECT_EQ(op.comm().allreduce(1, minimpi::ReduceOp::kSum), kRanks - 1);
  });
  EXPECT_EQ(permanent_faults.load(), kRanks - 1);
}

}  // namespace
}  // namespace hspmv::spmv
