// Machine descriptions of the paper's test systems (Sect. 1.3.2),
// calibrated against the Fig. 3 node-level measurements.
//
// A node is sockets x NUMA locality domains (LDs) x cores, with per-LD
// memory bandwidth. The spMVM and STREAM bandwidths follow the
// perfmodel::SaturationCurve contention law; the spMVM curve for Nehalem
// EP reproduces the paper's 0.91/1.50/1.95/2.25 GFlop/s ladder to ~1 %.
#pragma once

#include <string>

#include "perfmodel/saturation.hpp"

namespace hspmv::machine {

struct NodeSpec {
  std::string name;
  int numa_domains = 2;      ///< locality domains per node
  int cores_per_domain = 4;  ///< physical cores per LD
  int smt_per_core = 1;      ///< hardware threads per core (2 = SMT)
  double clock_ghz = 2.66;

  /// Effective STREAM triad bandwidth of one LD at saturation
  /// (write-allocate-corrected, as the paper reports it).
  double stream_bw_domain = 21.2e9;
  /// Single-core STREAM triad bandwidth.
  double stream_bw_core = 12.0e9;
  /// spMVM-achievable bandwidth of one LD at saturation (the paper
  /// measures ~85 % of STREAM; Sect. 2).
  double spmv_bw_domain = 18.1e9;
  /// Single-core spMVM bandwidth.
  double spmv_bw_core = 7.33e9;

  /// Aggregate last-level cache per LD (for kappa scaling).
  std::size_t cache_bytes_domain = 8u << 20;
  int cache_associativity = 16;

  /// Intra-node (shared-memory) MPI transfer characteristics.
  double intranode_latency = 0.6e-6;
  double intranode_bandwidth = 5.0e9;

  [[nodiscard]] int cores_per_node() const {
    return numa_domains * cores_per_domain;
  }
  [[nodiscard]] int hardware_threads_per_node() const {
    return cores_per_node() * smt_per_core;
  }

  /// spMVM bandwidth of `cores` cores within one LD (saturation law).
  [[nodiscard]] perfmodel::SaturationCurve spmv_curve() const {
    return perfmodel::SaturationCurve::fit(spmv_bw_core, cores_per_domain,
                                           spmv_bw_domain);
  }
  [[nodiscard]] perfmodel::SaturationCurve stream_curve() const {
    return perfmodel::SaturationCurve::fit(stream_bw_core, cores_per_domain,
                                           stream_bw_domain);
  }

  /// spMVM bandwidth available to a process using `cores` cores of one LD
  /// (clamped to the domain size).
  [[nodiscard]] double spmv_bandwidth(int cores) const;

  /// Node-aggregate spMVM bandwidth with all cores active.
  [[nodiscard]] double spmv_bandwidth_node() const {
    return spmv_bandwidth(cores_per_domain) * numa_domains;
  }
};

/// Intel Nehalem EP (Xeon X5550): 2 sockets x 4 cores, SMT, 2.66 GHz,
/// 3x DDR3-1333 per socket. Calibration source for Fig. 3(a).
NodeSpec nehalem_ep();

/// Intel Westmere EP (Xeon X5650): 2 sockets x 6 cores, SMT, 2.66 GHz.
/// The paper's main cluster (Figs. 5, 6).
NodeSpec westmere_ep();

/// AMD Magny Cours (Opteron 6172): 2 packages = 4 LDs x 6 cores,
/// 2.1 GHz, 2x DDR3-1333 per LD. The Cray XE6 node.
NodeSpec magny_cours();

}  // namespace hspmv::machine
