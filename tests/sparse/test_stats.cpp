#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include "matgen/poisson.hpp"
#include "sparse/coo.hpp"

namespace hspmv::sparse {
namespace {

TEST(Stats, Tridiagonal) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const MatrixStats s = compute_stats(a);
  EXPECT_EQ(s.rows, 10);
  EXPECT_EQ(s.nnz, 28);  // 3*10 - 2
  EXPECT_EQ(s.bandwidth, 1);
  EXPECT_EQ(s.nnz_per_row_min, 2);
  EXPECT_EQ(s.nnz_per_row_max, 3);
  EXPECT_TRUE(s.has_full_diagonal);
  EXPECT_EQ(s.empty_rows, 0);
  // Profile: rows 1..9 each reach one to the left.
  EXPECT_EQ(s.profile, 9);
}

TEST(Stats, DiagonalOnly) {
  CooBuilder b(4, 4);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, 1.0);
  const MatrixStats s = compute_stats(CsrMatrix(4, 4, b.finish()));
  EXPECT_EQ(s.bandwidth, 0);
  EXPECT_EQ(s.profile, 0);
  EXPECT_DOUBLE_EQ(s.nnz_per_row_mean, 1.0);
  EXPECT_DOUBLE_EQ(s.nnz_per_row_stddev, 0.0);
}

TEST(Stats, EmptyRowsAndMissingDiagonal) {
  CooBuilder b(4, 4);
  b.add(0, 3, 1.0);
  b.add(2, 0, 1.0);
  const MatrixStats s = compute_stats(CsrMatrix(4, 4, b.finish()));
  EXPECT_EQ(s.empty_rows, 2);
  EXPECT_FALSE(s.has_full_diagonal);
  EXPECT_EQ(s.bandwidth, 3);
  EXPECT_EQ(s.nnz_per_row_min, 0);
}

TEST(Stats, BandwidthOfWideEntry) {
  CooBuilder b(5, 5);
  for (index_t i = 0; i < 5; ++i) b.add(i, i, 1.0);
  b.add(4, 0, 1.0);
  const MatrixStats s = compute_stats(CsrMatrix(5, 5, b.finish()));
  EXPECT_EQ(s.bandwidth, 4);
  EXPECT_EQ(s.profile, 4);
}

TEST(Stats, PoissonNnzr) {
  const CsrMatrix a = matgen::poisson7({.nx = 8, .ny = 8, .nz = 8});
  const MatrixStats s = compute_stats(a);
  // Interior rows have 7 entries; Nnzr just below 7.
  EXPECT_GT(s.nnz_per_row_mean, 6.0);
  EXPECT_LE(s.nnz_per_row_mean, 7.0);
  EXPECT_EQ(s.nnz_per_row_max, 7);
  EXPECT_EQ(s.nnz_per_row_min, 4);  // corner cells
  EXPECT_EQ(s.bandwidth, 64);       // nx*ny plane stride
}

TEST(Stats, RowLengthHistogram) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const auto h = row_length_histogram(a, 5);
  EXPECT_EQ(h[2], 2);  // the two boundary rows
  EXPECT_EQ(h[3], 8);
  EXPECT_EQ(h[0], 0);
  std::int64_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 10);
}

TEST(Stats, HistogramTruncatesLongRows) {
  CooBuilder b(2, 8);
  for (index_t j = 0; j < 8; ++j) b.add(0, j, 1.0);
  b.add(1, 0, 1.0);
  const auto h = row_length_histogram(CsrMatrix(2, 8, b.finish()), 3);
  EXPECT_EQ(h[3], 1);  // the 8-entry row lands in the last bucket
  EXPECT_EQ(h[1], 1);
}

TEST(Stats, EmptyMatrix) {
  const MatrixStats s = compute_stats(CsrMatrix(0, 0, std::vector<Triplet>{}));
  EXPECT_EQ(s.rows, 0);
  EXPECT_EQ(s.nnz, 0);
}

}  // namespace
}  // namespace hspmv::sparse
