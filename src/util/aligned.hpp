// Cache-line / SIMD-aligned storage and NUMA first-touch placement.
//
// The spMVM kernels stream large arrays; aligning them to 64 bytes avoids
// split loads and makes the cache-simulator's line accounting exact.
//
// On multi-LD (NUMA) nodes, *which thread writes a page first* decides
// where the page lives: under Linux's default first-touch policy a page
// is placed on the locality domain of the faulting thread. The paper's
// node-level model (Eq. 1, Fig. 3's per-LD saturation) assumes data is
// placed where it is streamed — perfmodel/stream.cpp does this for the
// STREAM arrays, and the facilities below do it for the engine's
// matrices, vectors and send buffers: allocate without touching, then
// have each team member write exactly the chunk it will later stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace hspmv::util {

inline constexpr std::size_t kCacheLineBytes = 64;
/// Granularity of first-touch placement (smallest-page assumption; touch
/// strides use this, so huge pages only make the touch redundant).
inline constexpr std::size_t kPageBytes = 4096;

/// Minimal C++17 allocator returning 64-byte aligned memory.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector with 64-byte aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// AlignedAllocator that *default-initializes* on construct: for trivial
/// T, resize() then performs no stores at all, so the freshly mapped
/// pages stay untouched until real data is written into them — the
/// prerequisite for first-touch placement. Values are indeterminate
/// until written; only use through the first_touch_* helpers or code
/// that provably writes before reading.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class DefaultInitAllocator : public AlignedAllocator<T, Alignment> {
 public:
  using value_type = T;

  DefaultInitAllocator() noexcept = default;
  template <typename U>
  DefaultInitAllocator(const DefaultInitAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U, Alignment>;
  };

  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(static_cast<Args&&>(args)...);
  }
};

/// 64-byte aligned vector whose growth does not touch the new pages.
template <typename T>
using FirstTouchVector = std::vector<T, DefaultInitAllocator<T>>;

/// Write `value` into [begin, end) of `data` at page stride (plus both
/// endpoints): claims NUMA placement of every page the range overlaps
/// without streaming the whole range. The touched elements hold `value`;
/// the rest of the range stays indeterminate — use first_touch_fill when
/// the range must also end up initialized.
template <typename T>
void touch_pages(std::span<T> data, std::int64_t begin, std::int64_t end,
                 T value = T{}) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr auto stride =
      static_cast<std::int64_t>(kPageBytes / sizeof(T) > 0 ? kPageBytes /
                                                                 sizeof(T)
                                                           : 1);
  for (std::int64_t i = begin; i < end; i += stride) {
    data[static_cast<std::size_t>(i)] = value;
  }
  if (end > begin) data[static_cast<std::size_t>(end - 1)] = value;
}

/// Team-driven first-touch fill: member p of `team` writes `value` into
/// its chunk [boundaries[p], boundaries[p+1]) of `data`, so each page is
/// placed on the locality domain of the thread that owns the chunk.
/// boundaries has parties+1 entries with parties <= team.size(); members
/// beyond the last party idle. `party_of(id)` maps a team member id to
/// its party (or a negative value for non-participants) — the identity
/// by default; the engine's task mode passes id - 1 because member 0 is
/// the communication thread.
template <typename T, typename Team, typename PartyOf>
void first_touch_fill(Team& team, std::span<T> data,
                      std::span<const std::int64_t> boundaries,
                      PartyOf&& party_of, T value = T{}) {
  const auto parties = static_cast<int>(boundaries.size()) - 1;
  team.execute([&](int id) {
    const int party = party_of(id);
    if (party < 0 || party >= parties) return;
    const auto begin = boundaries[static_cast<std::size_t>(party)];
    const auto end = boundaries[static_cast<std::size_t>(party) + 1];
    for (std::int64_t i = begin; i < end; ++i) {
      data[static_cast<std::size_t>(i)] = value;
    }
  });
}

template <typename T, typename Team>
void first_touch_fill(Team& team, std::span<T> data,
                      std::span<const std::int64_t> boundaries,
                      T value = T{}) {
  first_touch_fill(team, data, boundaries, [](int id) { return id; }, value);
}

/// Team-driven placed copy: allocate untouched storage for src.size()
/// elements and have member p copy chunk [boundaries[p], boundaries[p+1])
/// — the placement-preserving clone used for the engine's local matrix
/// blocks. Elements outside [boundaries.front(), boundaries.back()) are
/// copied by member 0.
template <typename T, typename Team>
FirstTouchVector<T> first_touch_vector(Team& team, std::span<const T> src,
                                       std::span<const std::int64_t>
                                           boundaries) {
  static_assert(std::is_trivially_copyable_v<T>);
  FirstTouchVector<T> result;
  result.resize(src.size());  // no stores: pages stay untouched
  const auto parties = static_cast<int>(boundaries.size()) - 1;
  T* __restrict dst = result.data();
  const T* __restrict from = src.data();
  team.execute([&](int id) {
    if (id < 0 || id >= parties) return;
    auto begin = boundaries[static_cast<std::size_t>(id)];
    auto end = boundaries[static_cast<std::size_t>(id) + 1];
    if (id == 0) begin = 0;
    if (id == parties - 1) end = static_cast<std::int64_t>(src.size());
    for (std::int64_t i = begin; i < end; ++i) {
      dst[static_cast<std::size_t>(i)] = from[static_cast<std::size_t>(i)];
    }
  });
  return result;
}

}  // namespace hspmv::util
