// Compressed Row Storage (CRS/CSR) matrix.
//
// The storage layout follows the paper exactly (Sect. 1.2): all nonzeros in
// one contiguous `val` array row by row, per-row starting offsets in
// `row_ptr`, and the original column index of each entry in `col_idx`
// (4-byte indices — part of the traffic model).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"
#include "util/aligned.hpp"

namespace hspmv::sparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a triplet list. Triplets must be sorted row-major with
  /// unique (row, col) pairs — exactly what CooBuilder::finish() returns;
  /// violations throw std::invalid_argument.
  CsrMatrix(index_t rows, index_t cols, const std::vector<Triplet>& triplets);

  /// Build from raw CSR arrays (validated).
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
            util::AlignedVector<index_t> col_idx,
            util::AlignedVector<value_t> val);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] offset_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  /// Average nonzeros per row — the paper's Nnzr.
  [[nodiscard]] double nnz_per_row() const noexcept {
    return rows_ == 0 ? 0.0
                      : static_cast<double>(nnz()) / static_cast<double>(rows_);
  }

  [[nodiscard]] std::span<const offset_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const value_t> val() const noexcept { return val_; }
  [[nodiscard]] std::span<value_t> val_mutable() noexcept { return val_; }
  [[nodiscard]] std::span<index_t> col_idx_mutable() noexcept {
    return col_idx_;
  }

  /// Entries of row i as (col_idx, val) spans.
  [[nodiscard]] std::pair<std::span<const index_t>, std::span<const value_t>>
  row(index_t i) const;

  /// Value at (row, col); 0 when the position holds no stored entry.
  [[nodiscard]] value_t at(index_t row, index_t col) const;

  /// Extract the sub-matrix of a contiguous row range [row_begin, row_end)
  /// keeping global column indices — the building block for distribution.
  [[nodiscard]] CsrMatrix row_block(index_t row_begin, index_t row_end) const;

  /// Transpose (also the adjacency reversal used by RCM on structurally
  /// nonsymmetric inputs).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Structural symmetry check: pattern(A) == pattern(A^T).
  [[nodiscard]] bool is_structurally_symmetric() const;

  /// Heap bytes consumed by the three arrays (the traffic model's V_mat).
  [[nodiscard]] std::size_t storage_bytes() const noexcept {
    return row_ptr_.size() * sizeof(offset_t) +
           col_idx_.size() * sizeof(index_t) + val_.size() * sizeof(value_t);
  }

  /// Apply a symmetric permutation: B = P A P^T with
  /// B(new_of[i], new_of[j]) = A(i, j). `new_of[old] = new`.
  [[nodiscard]] CsrMatrix permute_symmetric(
      std::span<const index_t> new_of) const;

 private:
  void validate() const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  util::AlignedVector<index_t> col_idx_;
  util::AlignedVector<value_t> val_;
};

}  // namespace hspmv::sparse
