#include "spmv/dist_matrix.hpp"

#include <stdexcept>

namespace hspmv::spmv {

using sparse::index_t;

DistMatrix::DistMatrix(minimpi::Comm comm, const sparse::CsrMatrix& global,
                       std::span<const index_t> boundaries)
    : comm_(comm) {
  if (!comm.valid()) {
    throw std::invalid_argument("DistMatrix: invalid communicator");
  }
  if (boundaries.size() != static_cast<std::size_t>(comm.size()) + 1) {
    throw std::invalid_argument(
        "DistMatrix: boundaries must have comm.size()+1 entries");
  }
  const int rank = comm.rank();
  row_begin_ = boundaries[static_cast<std::size_t>(rank)];
  global_rows_ = global.rows();
  global_nnz_ = global.nnz();

  const sparse::CsrMatrix block = global.row_block(
      row_begin_, boundaries[static_cast<std::size_t>(rank) + 1]);
  init_from_block(block, boundaries);
}

DistMatrix DistMatrix::from_local_block(
    minimpi::Comm comm, const sparse::CsrMatrix& local_block,
    std::span<const index_t> boundaries) {
  if (!comm.valid()) {
    throw std::invalid_argument("DistMatrix: invalid communicator");
  }
  if (boundaries.size() != static_cast<std::size_t>(comm.size()) + 1) {
    throw std::invalid_argument(
        "DistMatrix: boundaries must have comm.size()+1 entries");
  }
  DistMatrix result;
  result.comm_ = comm;
  const int rank = comm.rank();
  result.row_begin_ = boundaries[static_cast<std::size_t>(rank)];
  result.global_rows_ = boundaries.back();
  if (local_block.cols() != result.global_rows_) {
    throw std::invalid_argument(
        "DistMatrix::from_local_block: block columns must span the global "
        "index range");
  }
  // Global nnz is only known collectively here.
  result.global_nnz_ =
      comm.allreduce(local_block.nnz(), minimpi::ReduceOp::kSum);
  result.init_from_block(local_block, boundaries);
  return result;
}

std::int64_t DistMatrix::total_halo_elements() const {
  return comm_.allreduce(static_cast<std::int64_t>(halo_count()),
                         minimpi::ReduceOp::kSum);
}

void DistMatrix::init_from_block(const sparse::CsrMatrix& block,
                                 std::span<const index_t> boundaries) {
  local_ = build_local_plan(block, boundaries, comm_.rank());

  // Tell every peer which of its elements I need; learn what peers need
  // from me. One alltoallv of global column ids.
  std::vector<std::vector<index_t>> needs(
      static_cast<std::size_t>(comm_.size()));
  for (const RecvBlock& rb : local_.plan.recv_blocks) {
    auto& list = needs[static_cast<std::size_t>(rb.peer)];
    list.assign(
        local_.halo_globals.begin() + rb.halo_offset,
        local_.halo_globals.begin() + rb.halo_offset + rb.count);
  }
  const auto requested = comm_.alltoallv(needs);
  for (int peer = 0; peer < comm_.size(); ++peer) {
    const auto& list = requested[static_cast<std::size_t>(peer)];
    if (list.empty()) continue;
    SendBlock sb;
    sb.peer = peer;
    sb.gather.reserve(list.size());
    for (const index_t global_col : list) {
      sb.gather.push_back(global_col - row_begin_);
    }
    local_.plan.send_blocks.push_back(std::move(sb));
  }
}

}  // namespace hspmv::spmv
