#!/usr/bin/env bash
# Static-analysis lane (ctest -L lint / scripts/tier1.sh lint).
#
# Three passes, strongest-available first:
#   1. hspmv-check — the project-specific analyzer (scripts/
#      staticcheck.sh): MPI/team/NUMA/determinism invariants against the
#      committed baseline. Always runs (skips itself with a notice when
#      the toolchain cannot build it).
#   2. clang-tidy with the repo's .clang-tidy profile (bugprone-*,
#      concurrency-*, performance-*, selected cppcoreguidelines), driven
#      over the build's compile_commands.json. Diagnostics are compared
#      against tools/clang-tidy-baseline.txt: only NEW warnings —
#      <file>:<check-id> pairs absent from the committed baseline — fail
#      the lane, so tightening the profile never blocks unrelated work
#      while regressions still land red.
#   3. When no clang-tidy is installed (the minimal CI container ships
#      only GCC), pass 2 degrades to a strict GCC warning pass: the src/
#      libraries are recompiled in a scratch build dir with an extended
#      -W set and -Werror.
#
# Exit status: 0 = clean, nonzero = findings (any pass).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

# Pass 1: project-specific invariants (divergent collectives, nonblocking
# buffer lifetimes, first-touch placement, write-range claims,
# determinism policy). Failing here is a real finding, not a style nit.
"${repo_root}/scripts/staticcheck.sh" "${build_dir}"

# The src/ libraries (tests and benches are out of scope for the lane).
lib_sources() {
  find "${repo_root}/src" -name '*.cpp' | sort
}

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint: configuring ${build_dir} for compile_commands.json"
    cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  fi
  echo "lint: clang-tidy ($(clang-tidy --version | head -n 1))"
  # Collect diagnostics, then normalize to <relative-file>:<check-id>
  # pairs and diff against the committed baseline. WarningsAsErrors in
  # .clang-tidy makes clang-tidy exit nonzero on any finding, so the
  # per-file exit codes are ignored in favor of the baseline compare.
  raw="$(mktemp)"
  trap 'rm -f "${raw}"' EXIT
  while IFS= read -r source; do
    clang-tidy -p "${build_dir}" --quiet "${source}" 2>/dev/null || true
  done < <(lib_sources) > "${raw}"
  observed="$(
    sed -n 's/^\(.*\):[0-9]*:[0-9]*: \(warning\|error\): .*\[\(.*\)\]$/\1:\3/p' \
        "${raw}" |
      sed "s|^${repo_root}/||" | sort -u
  )"
  baseline_file="${repo_root}/tools/clang-tidy-baseline.txt"
  known="$(grep -v '^#' "${baseline_file}" 2>/dev/null | sed '/^$/d' |
           sort -u || true)"
  new="$(comm -23 <(printf '%s\n' "${observed}" | sed '/^$/d') \
                  <(printf '%s\n' "${known}") || true)"
  if [[ -n "${new}" ]]; then
    echo "lint: clang-tidy warnings not in tools/clang-tidy-baseline.txt:" >&2
    printf '%s\n' "${new}" >&2
    echo "lint: fix them or (for accepted legacy findings) add the" \
         "<file>:<check-id> lines to the baseline with a justification" >&2
    exit 1
  fi
  echo "lint: clean (clang-tidy, no new warnings vs baseline)"
  exit 0
fi

echo "lint: clang-tidy not found; falling back to a strict GCC warning pass"
lint_dir="${build_dir}-lint"
strict_flags="-Wall -Wextra -Wpedantic -Wshadow -Wnon-virtual-dtor \
-Wcast-qual -Wformat=2 -Wundef -Wdouble-promotion -Wvla -Werror"
cmake -B "${lint_dir}" -S "${repo_root}" \
  -DCMAKE_CXX_FLAGS="${strict_flags}" >/dev/null

# Library targets only: the tests/benches include third-party macros that
# the strict set was not tuned for.
targets=(
  hspmv_util hspmv_team hspmv_minimpi hspmv_sparse hspmv_matgen
  hspmv_spmv hspmv_perfmodel hspmv_cachesim hspmv_machine hspmv_netmodel
  hspmv_solvers hspmv_cluster hspmv_benchlib hspmv_analysis
)
for target in "${targets[@]}"; do
  cmake --build "${lint_dir}" -j --target "${target}"
done
echo "lint: clean (GCC strict warning pass)"
