#include "spmv/partition.hpp"

#include <gtest/gtest.h>

#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;

TEST(Partition, BalancedRowsEqualCounts) {
  const CsrMatrix a = matgen::laplacian1d(100);
  const auto b = partition_rows(a, 4, PartitionStrategy::kBalancedRows);
  EXPECT_EQ(b, (std::vector<index_t>{0, 25, 50, 75, 100}));
}

TEST(Partition, BalancedRowsUnevenDivision) {
  const CsrMatrix a = matgen::laplacian1d(10);
  const auto b = partition_rows(a, 3, PartitionStrategy::kBalancedRows);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 10);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GE(b[i], b[i - 1]);
    EXPECT_LE(b[i] - b[i - 1], 4);
  }
}

TEST(Partition, BalancedNnzBeatsRowsOnSkewedMatrix) {
  const CsrMatrix a = matgen::random_power_law(2000, 4, 0.8, 3);
  const auto rows = partition_rows(a, 8, PartitionStrategy::kBalancedRows);
  const auto nnz = partition_rows(a, 8, PartitionStrategy::kBalancedNonzeros);
  const double imbalance_rows = partition_imbalance(a, rows);
  const double imbalance_nnz = partition_imbalance(a, nnz);
  EXPECT_LT(imbalance_nnz, imbalance_rows);
  EXPECT_LT(imbalance_nnz, 1.5);
  EXPECT_GT(imbalance_rows, 2.0);
}

TEST(Partition, NnzCountsSumToTotal) {
  const CsrMatrix a = matgen::poisson5_2d(20, 20);
  const auto b = partition_rows(a, 5, PartitionStrategy::kBalancedNonzeros);
  const auto nnz = partition_nnz(a, b);
  std::int64_t total = 0;
  for (auto v : nnz) total += v;
  EXPECT_EQ(total, a.nnz());
}

TEST(Partition, SinglePart) {
  const CsrMatrix a = matgen::laplacian1d(7);
  const auto b = partition_rows(a, 1, PartitionStrategy::kBalancedNonzeros);
  EXPECT_EQ(b, (std::vector<index_t>{0, 7}));
  EXPECT_DOUBLE_EQ(partition_imbalance(a, b), 1.0);
}

TEST(Partition, MorePartsThanRows) {
  const CsrMatrix a = matgen::laplacian1d(3);
  const auto b = partition_rows(a, 8, PartitionStrategy::kBalancedRows);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 3);
  EXPECT_EQ(b.size(), 9u);
}

TEST(Partition, InvalidArgsThrow) {
  const CsrMatrix a = matgen::laplacian1d(5);
  EXPECT_THROW((void)partition_rows(a, 0, PartitionStrategy::kBalancedRows),
               std::invalid_argument);
  std::vector<index_t> bad{0, 3};  // back != rows
  EXPECT_THROW((void)partition_nnz(a, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::spmv
