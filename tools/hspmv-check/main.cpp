// hspmv-check — the project-specific static analysis CLI.
//
// Proves the MPI/team/NUMA/determinism source invariants of the hybrid
// model at compile time (check list: --list-checks; design and the
// static<->dynamic cross-reference table: docs/correctness-tooling.md).
//
//   hspmv-check --root src --baseline tools/hspmv-check-baseline.txt
//               [--compile-commands build/compile_commands.json]
//               [--json ANALYSIS_report.json] [--check id]...
//
// Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage.
// Suppress a justified finding inline with
//   // HSPMV-CHECK-ALLOW(check-id): reason
// or record legacy findings in the committed baseline
// (--update-baseline rewrites it from the current run).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/driver.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: hspmv-check [options] \n"
      "  --root DIR             analyze DIR recursively (repeatable;\n"
      "                         default: src bench examples relative to\n"
      "                         --repo-root)\n"
      "  --repo-root DIR        repo root for display paths (default: .)\n"
      "  --compile-commands F   add the TUs listed in F to the file set\n"
      "  --baseline F           committed suppression baseline file\n"
      "  --update-baseline F    rewrite F from this run's findings\n"
      "  --json F               write the machine-readable report to F\n"
      "  --check ID             run only check ID (repeatable)\n"
      "  --list-checks          print the registered checks and exit\n"
      "  --quiet                suppress per-finding text output\n";
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using hspmv::analysis::AnalysisOptions;
  using hspmv::analysis::Finding;

  AnalysisOptions options;
  options.repo_root = ".";
  std::string json_path;
  std::string update_baseline_path;
  bool quiet = false;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "hspmv-check: " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      options.roots.push_back(need_value(i, "--root"));
    } else if (arg == "--repo-root") {
      options.repo_root = need_value(i, "--repo-root");
    } else if (arg == "--compile-commands") {
      options.compile_commands = need_value(i, "--compile-commands");
    } else if (arg == "--baseline") {
      options.baseline_path = need_value(i, "--baseline");
    } else if (arg == "--update-baseline") {
      update_baseline_path = need_value(i, "--update-baseline");
    } else if (arg == "--json") {
      json_path = need_value(i, "--json");
    } else if (arg == "--check") {
      options.only_checks.push_back(need_value(i, "--check"));
    } else if (arg == "--list-checks") {
      for (const auto& check : hspmv::analysis::all_checks()) {
        std::cout << check->id() << "\n    " << check->description()
                  << "\n    mirrors: " << check->mirrors() << "\n";
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::cerr << "hspmv-check: unknown option '" << arg << "'\n";
      print_usage();
      return 2;
    }
  }
  if (options.roots.empty()) {
    for (const char* sub : {"src", "bench", "examples"}) {
      const fs::path p = fs::path(options.repo_root) / sub;
      std::error_code ec;
      if (fs::is_directory(p, ec)) options.roots.push_back(p.string());
    }
  }

  const auto result = hspmv::analysis::run_analysis(options);
  const auto& report = result.report;

  if (!quiet) {
    for (const Finding& f : report.findings) {
      if (f.suppressed) continue;  // justified inline — not noise
      std::cout << f.file << ":" << f.line << ": "
                << (f.baselined ? "[baselined] " : "") << "[" << f.check
                << "] " << f.message << "\n";
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << report.to_json();
    if (!out) {
      std::cerr << "hspmv-check: cannot write " << json_path << "\n";
      return 2;
    }
  }
  if (!update_baseline_path.empty()) {
    std::ofstream out(update_baseline_path);
    out << hspmv::analysis::baseline_text(report, result.finding_lines);
    if (!out) {
      std::cerr << "hspmv-check: cannot write " << update_baseline_path
                << "\n";
      return 2;
    }
  }

  int suppressed = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed || f.baselined) ++suppressed;
  }
  std::cout << "hspmv-check: " << report.files_analyzed << " files, "
            << report.unsuppressed_count() << " unsuppressed finding(s), "
            << suppressed << " suppressed/baselined\n";
  return report.unsuppressed_count() == 0 ? 0 : 1;
}
