// Negative fixture for hspmv-check: nonblocking-lifetime.
//
// Analyzed by tests/analysis/test_hspmv_check.cpp; never compiled.
// Exercises three of the flagged shapes: a discarded request, a buffer
// mutated while its send is in flight, and a locally-bound request that
// scopes out without a wait.
#include <span>
#include <vector>

#include "minimpi/comm.hpp"

namespace fixture {

// Discarded request: nothing can ever wait on the isend.
void fire_and_forget(minimpi::Comm& comm, std::span<const double> buffer) {
  comm.isend(1, 0, buffer);
}

// Buffer resized between the post and the wait: the transfer may still
// be reading the old storage when the reallocation frees it.
void mutate_in_flight(minimpi::Comm& comm, std::vector<double>& buffer) {
  auto request = comm.isend(1, 0, std::span<const double>(buffer));
  buffer.resize(buffer.size() * 2);
  comm.wait(request);
}

// Locally-bound request with no wait on any path: the receive can still
// target `scratch` after both go out of scope.
void scope_out(minimpi::Comm& comm, std::vector<double>& scratch) {
  auto request = comm.irecv(0, 0, std::span<double>(scratch));
}

// Topology change with a request in flight: the spawn bumps the epoch
// and the pre-grow request can only ever complete as a FaultError.
void grow_in_flight(minimpi::Comm& comm, std::vector<double>& buffer) {
  auto request = comm.isend(1, 0, std::span<const double>(buffer));
  comm.spawn(1, [](minimpi::Comm&) {});
  comm.wait(request);
}

}  // namespace fixture
