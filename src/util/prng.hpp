// xoshiro256** pseudo-random number generator.
//
// A small, fast, high-quality PRNG (Blackman & Vigna). Used instead of
// std::mt19937 where reproducible streams across compilers matter: the
// matrix generators must produce bit-identical sparsity patterns so the
// benchmarks and tests are deterministic.
#pragma once

#include <cstdint>

namespace hspmv::util {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed using the
  /// splitmix64 expansion recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    const __uint128_t product =
        static_cast<__uint128_t>((*this)()) * static_cast<__uint128_t>(bound);
    return static_cast<std::uint64_t>(product >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hspmv::util
