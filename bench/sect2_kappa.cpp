// EXP-S2 — reproduces the Sect. 2 analysis: measuring kappa (the extra
// RHS traffic from limited cache capacity) by replaying the spMVM access
// stream through a cache simulator, and deriving the performance bounds
// of the code-balance model.
//
// Paper numbers (full-size matrices on Nehalem EP, 8 MB L3):
//   HMeP: kappa = 2.5  -> B(:) loaded ~6x, measured 2.25 GFlop/s vs the
//         2.66 GFlop/s kappa=0 bound;
//   HMEp: kappa = 3.79 -> ~50 % more extra B(:) traffic, ~10 % lower
//         performance.
// We run scaled instances with the cache scaled by the same factor, which
// preserves the B-size/cache ratio that determines kappa.

#include <cstdio>

#include "cachesim/spmv_traffic.hpp"
#include "common/paper_matrices.hpp"
#include "machine/node_spec.hpp"
#include "perfmodel/code_balance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("sect2_kappa",
                      "Sect. 2 — kappa measurement via cache simulation");
  cli.add_option("scale", "1", "matrix scale level: 0 tiny, 1 default, 2 large, 3 full paper size");
  if (!cli.parse(argc, argv)) return 1;
  const int scale = static_cast<int>(cli.get_int("scale"));

  const auto node = machine::nehalem_ep();
  std::printf(
      "Sect. 2 — kappa via cache-simulator replay (Nehalem EP model, "
      "%zu MB L3 scaled to the instance size)\n\n",
      node.cache_bytes_domain >> 20);

  util::Table table({"matrix", "Nnzr", "kappa (sim)", "kappa (paper)",
                     "B loads", "bound k=0 [GF/s]", "perf(kappa) [GF/s]",
                     "drop vs HMeP"});

  double hmep_perf = 0.0;
  for (auto& pm : {bench::make_hmep(scale), bench::make_hmep_electron(scale),
                   bench::make_samg(scale)}) {
    // Scale the cache with the RHS working-set ratio of the family so the
    // capacity effect of the full-size run is preserved.
    const auto bytes = static_cast<std::size_t>(
        static_cast<double>(node.cache_bytes_domain) * pm.cache_scale);
    const auto config =
        cachesim::make_cache_config(bytes, node.cache_associativity);
    const auto report = cachesim::simulate_spmv_traffic(pm.matrix, config);

    const double bound0 =
        perfmodel::performance_bound(
            node.spmv_bw_domain,
            perfmodel::crs_code_balance(report.nnzr, 0.0)) /
        1e9;
    const double perf =
        perfmodel::performance_bound(
            node.spmv_bw_domain,
            perfmodel::crs_code_balance(report.nnzr, report.kappa)) /
        1e9;
    if (pm.name == "HMeP") hmep_perf = perf;
    const double drop =
        hmep_perf > 0.0 ? (hmep_perf - perf) / hmep_perf * 100.0 : 0.0;

    table.add_row({pm.name, util::Table::cell(report.nnzr, 2),
                   util::Table::cell(report.kappa, 2),
                   util::Table::cell(pm.paper_kappa, 2),
                   util::Table::cell(report.b_load_count, 1),
                   util::Table::cell(bound0, 2), util::Table::cell(perf, 2),
                   pm.name == "HMeP"
                       ? std::string("-")
                       : util::Table::cell(drop, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "paper: HMeP kappa = 2.5 (B loaded ~6x), HMEp kappa = 3.79 (~10%% "
      "performance drop), kappa=0 bound 2.66 GFlop/s at 18.1 GB/s.\n");
  return 0;
}
