#include "analysis/registry.hpp"

namespace hspmv::analysis {

bool is_fixture_path(const std::string& path) {
  return path.find("tests/analysis/fixtures") != std::string::npos;
}

bool path_starts_with_any(const std::string& path,
                          std::initializer_list<const char*> prefixes) {
  for (const char* prefix : prefixes) {
    if (path.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

const std::vector<std::unique_ptr<Check>>& all_checks() {
  static const std::vector<std::unique_ptr<Check>> kChecks = [] {
    std::vector<std::unique_ptr<Check>> checks;
    checks.push_back(make_divergent_collective_check());
    checks.push_back(make_nonblocking_lifetime_check());
    checks.push_back(make_first_touch_check());
    checks.push_back(make_write_range_claim_check());
    checks.push_back(make_determinism_policy_check());
    return checks;
  }();
  return kChecks;
}

}  // namespace hspmv::analysis
