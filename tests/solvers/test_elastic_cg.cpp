// Elastic-capacity tier for the resilient solvers: mid-solve grows
// (ResilienceOptions::grows), the end-to-end shrink-then-grow-back
// determinism guarantee, and the epoch-aware buddy-checkpoint mapping
// that makes restores safe across topology changes.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <numbers>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/seeded_fixture.hpp"
#include "matgen/poisson.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "solvers/resilience.hpp"
#include "sparse/kernels.hpp"
#include "util/prng.hpp"

namespace hspmv::solvers {
namespace {

using sparse::value_t;

class ElasticCg : public testutil::SeededTest {};

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<value_t> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Problem with a known solution: b = A x_true on the 2-D Poisson matrix.
struct Problem {
  sparse::CsrMatrix a;
  std::vector<value_t> x_true;
  std::vector<value_t> b;
};

Problem make_problem(std::uint64_t seed) {
  Problem problem{matgen::poisson5_2d(16, 16), {}, {}};
  problem.x_true =
      random_vector(static_cast<std::size_t>(problem.a.rows()), seed);
  problem.b.resize(problem.x_true.size());
  sparse::spmv(problem.a, problem.x_true, problem.b);
  return problem;
}

ResilienceOptions fast_options() {
  ResilienceOptions options;
  options.checkpoint_interval = 5;
  options.engine.retry.enabled = true;
  options.engine.retry.max_attempts = 4;
  options.engine.retry.base_backoff_seconds = 1e-5;
  options.engine.retry.max_backoff_seconds = 1e-4;
  return options;
}

/// Run resilient_cg on `ranks` founding threads; founder results are
/// indexed by world rank, joiner results collected separately.
struct ElasticRun {
  std::vector<ResilientCgResult> founders;
  std::vector<ResilientCgResult> joiners;
};

ElasticRun run_cg(const Problem& problem, int ranks,
                  ResilienceOptions resilience,
                  const minimpi::RuntimeOptions& runtime,
                  const CgOptions& cg = {}) {
  ElasticRun out;
  out.founders.resize(static_cast<std::size_t>(ranks));
  std::mutex mutex;
  resilience.on_joiner_result = [&](ResilientCgResult result) {
    std::lock_guard<std::mutex> lock(mutex);
    out.joiners.push_back(std::move(result));
  };
  minimpi::run(runtime, [&](minimpi::Comm& comm) {
    auto result = resilient_cg(comm, problem.a, problem.b, resilience, cg);
    std::lock_guard<std::mutex> lock(mutex);
    out.founders[static_cast<std::size_t>(comm.rank())] = std::move(result);
  });
  return out;
}

TEST_F(ElasticCg, MigrateModeGrowResumesWithoutLosingIterations) {
  // A capacity grow without any failure: the live recurrence migrates
  // onto the grown membership (x, r, p follow their rows bitwise) and
  // the solve resumes at the same iteration, so nothing is lost and the
  // answer is still the known solution.
  const Problem problem = make_problem(seed(1));
  ResilienceOptions resilience = fast_options();
  resilience.grows.push_back({6, 1, /*rollback=*/false});
  minimpi::RuntimeOptions runtime;
  runtime.ranks = 3;
  const ElasticRun run = run_cg(problem, 3, resilience, runtime);

  ASSERT_EQ(run.joiners.size(), 1u);
  std::vector<const ResilientCgResult*> all;
  for (const auto& r : run.founders) all.push_back(&r);
  all.push_back(&run.joiners.front());
  for (const ResilientCgResult* result : all) {
    EXPECT_TRUE(result->cg.converged);
    EXPECT_TRUE(result->recovery.survivor);
    EXPECT_EQ(result->recovery.grows, 1);
    EXPECT_EQ(result->recovery.failures_recovered, 0);
    EXPECT_EQ(result->recovery.iterations_lost, 0);
    EXPECT_EQ(result->recovery.final_size, 4);
    EXPECT_GT(result->recovery.rows_migrated, 0);
    EXPECT_LT(result->recovery.rows_migrated,
              result->recovery.rows_full_replication);
    ASSERT_EQ(result->x.size(), problem.x_true.size());
    for (std::size_t i = 0; i < result->x.size(); ++i) {
      EXPECT_NEAR(result->x[i], problem.x_true[i], 1e-6);
    }
  }
  // Every member holds bitwise the same replicated solution.
  for (const ResilientCgResult* result : all) {
    EXPECT_EQ(result->x, all.front()->x);
    EXPECT_EQ(result->cg.residual_history,
              all.front()->cg.residual_history);
  }
}

TEST_F(ElasticCg, ShrinkThenGrowBackMatchesCalmRunBitwise) {
  // The end-to-end elasticity guarantee: kill a rank mid-solve (shrink
  // to 3), grow back to 4 a few iterations later in rollback mode, and
  // the continuation must be bitwise a calm 4-rank run — the full
  // residual history and the final solution compare with EXPECT_EQ, not
  // EXPECT_NEAR. The trick making this exact: with only the bootstrap
  // checkpoint (x = 0 at iteration 0, partition-independent content),
  // the post-grow restore + restart reproduces the calm run's starting
  // state on the calm run's partition.
  constexpr int kRanks = 4;
  constexpr int kVictim = 2;
  const Problem problem = make_problem(seed(2));
  ResilienceOptions resilience = fast_options();
  resilience.checkpoint_interval = 1 << 20;  // bootstrap checkpoint only

  minimpi::RuntimeOptions runtime;
  runtime.ranks = kRanks;
  const ElasticRun calm = run_cg(problem, kRanks, resilience, runtime);
  const auto& calm_result = calm.founders.front();
  ASSERT_TRUE(calm_result.cg.converged);

  resilience.failures.push_back({kVictim, 3});
  resilience.grows.push_back({6, 1, /*rollback=*/true});
  const ElasticRun elastic = run_cg(problem, kRanks, resilience, runtime);

  EXPECT_FALSE(elastic.founders[kVictim].recovery.survivor);
  ASSERT_EQ(elastic.joiners.size(), 1u);
  std::vector<const ResilientCgResult*> members;
  for (int rank = 0; rank < kRanks; ++rank) {
    if (rank == kVictim) continue;
    members.push_back(&elastic.founders[static_cast<std::size_t>(rank)]);
  }
  members.push_back(&elastic.joiners.front());
  for (const ResilientCgResult* result : members) {
    EXPECT_TRUE(result->cg.converged);
    EXPECT_EQ(result->recovery.grows, 1);
    EXPECT_EQ(result->recovery.final_size, kRanks);
    // The incremental repartitioner must beat full re-replication on
    // both topology changes (one shrink + one grow, each of which would
    // have re-replicated every row in the pre-elastic engine).
    EXPECT_GT(result->recovery.rows_migrated, 0);
    EXPECT_LT(result->recovery.rows_migrated,
              result->recovery.rows_full_replication);
    // Bitwise: the elastic run IS the calm run from the restored
    // checkpoint onward.
    EXPECT_EQ(result->x, calm_result.x);
    EXPECT_EQ(result->cg.residual_history, calm_result.cg.residual_history);
  }
  const auto& survivor = *members.front();
  EXPECT_EQ(survivor.recovery.failures_recovered, 1);
  // Full replication would have touched every row on each of the two
  // changes.
  EXPECT_EQ(survivor.recovery.rows_full_replication,
            2 * static_cast<std::int64_t>(problem.a.rows()));
}

TEST_F(ElasticCg, EpochKeepsGenerationsFromDifferentTopologiesApart) {
  // Satellite regression: two complete checkpoint generations at the
  // SAME iteration but from different topologies (4-rank partition
  // before a death, 3-rank partition after). Without the epoch in the
  // grouping key their slices land in one bucket where the row ranges
  // overlap instead of tiling, and restore spuriously reports the
  // checkpoint as lost (or worse, stitches slices of different states).
  // With epoch-aware grouping the restore must succeed and return the
  // newer topology's generation.
  constexpr int kRanks = 4;
  constexpr int kVictim = 1;
  const sparse::index_t rows = 96;  // 24 each at 4 ranks, 32 each at 3
  const auto u = random_vector(static_cast<std::size_t>(rows), seed(3));
  const auto v = random_vector(static_cast<std::size_t>(rows), seed(4));

  minimpi::run(kRanks, [&](minimpi::Comm& comm) {
    BuddyCheckpoint store;
    const auto old_begin = rows * comm.rank() / kRanks;
    const auto old_len = rows * (comm.rank() + 1) / kRanks - old_begin;
    store.save(comm, old_begin, 7,
               {std::span<const value_t>(u).subspan(
                   static_cast<std::size_t>(old_begin),
                   static_cast<std::size_t>(old_len))},
               {});
    try {
      comm.barrier();
    } catch (const minimpi::FaultError&) {
    }
    if (comm.rank() == kVictim) {
      try {
        comm.simulate_rank_failure();
      } catch (const minimpi::FaultError&) {
        return;
      }
    }
    try {
      comm.barrier();
    } catch (const minimpi::FaultError&) {
    }
    minimpi::Comm shrunk;
    for (int attempt = 0; attempt <= kRanks; ++attempt) {
      try {
        shrunk = comm.shrink();
        break;
      } catch (const minimpi::FaultError&) {
      }
    }
    ASSERT_EQ(shrunk.size(), kRanks - 1);
    // Save a DIFFERENT state at the same iteration under the shrunk
    // topology (epoch 1, 3-rank partition).
    const auto new_begin = rows * shrunk.rank() / shrunk.size();
    const auto new_len =
        rows * (shrunk.rank() + 1) / shrunk.size() - new_begin;
    store.save(shrunk, new_begin, 7,
               {std::span<const value_t>(v).subspan(
                   static_cast<std::size_t>(new_begin),
                   static_cast<std::size_t>(new_len))},
               {});
    const auto restored =
        store.restore_global(shrunk, rows, new_begin, new_len);
    EXPECT_EQ(restored.iteration, 7);
    ASSERT_EQ(restored.vectors.size(), 1u);
    // The newest epoch wins the tie: the post-shrink state, not the
    // pre-shrink one, and certainly not a mix.
    EXPECT_EQ(restored.vectors[0], v);
  });
}

TEST_F(ElasticCg, RemapRepairsBuddyInvariantAfterGrow) {
  // After a grow, the (rank+1) % size buddy of rank 1 changes from rank
  // 0 to the joiner (rank 2). remap() must re-replicate committed
  // snapshots to the new buddies — afterwards rank 1's slice survives
  // rank 1's death only because the joiner holds it.
  constexpr sparse::index_t rows = 64;
  const auto u = random_vector(static_cast<std::size_t>(rows), seed(5));

  const auto after_grow = [&](minimpi::Comm& grown, BuddyCheckpoint& store) {
    store.remap(grown);
    try {
      grown.barrier();
    } catch (const minimpi::FaultError&) {
    }
    if (grown.rank() == 1) {
      try {
        grown.simulate_rank_failure();
      } catch (const minimpi::FaultError&) {
        return;
      }
    }
    try {
      grown.barrier();
    } catch (const minimpi::FaultError&) {
    }
    minimpi::Comm shrunk;
    for (int attempt = 0; attempt <= 3; ++attempt) {
      try {
        shrunk = grown.shrink();
        break;
      } catch (const minimpi::FaultError&) {
      }
    }
    ASSERT_EQ(shrunk.size(), 2);
    const auto restored = store.restore_global(shrunk, rows, 0, rows / 2);
    EXPECT_EQ(restored.iteration, 3);
    ASSERT_EQ(restored.vectors.size(), 1u);
    EXPECT_EQ(restored.vectors[0], u);
  };

  minimpi::run(2, [&](minimpi::Comm& comm) {
    BuddyCheckpoint store;
    const auto begin = rows * comm.rank() / 2;
    const auto len = rows / 2;
    store.save(comm, begin, 3,
               {std::span<const value_t>(u).subspan(
                   static_cast<std::size_t>(begin),
                   static_cast<std::size_t>(len))},
               {});
    minimpi::Comm grown =
        comm.spawn(1, [&](minimpi::Comm& joined) {
          BuddyCheckpoint empty;  // joiners start with no snapshots
          after_grow(joined, empty);
        });
    after_grow(grown, store);
  });
}

TEST_F(ElasticCg, ParseGrowPlan) {
  const GrowPlan plain = parse_grow_plan("20:+2");
  EXPECT_EQ(plain.iteration, 20);
  EXPECT_EQ(plain.ranks, 2);
  EXPECT_FALSE(plain.rollback);
  const GrowPlan rollback = parse_grow_plan("0:+1!");
  EXPECT_EQ(rollback.iteration, 0);
  EXPECT_EQ(rollback.ranks, 1);
  EXPECT_TRUE(rollback.rollback);
  for (const char* bad :
       {"", "5", "5:", "5:2", ":+2", "5:+", "5:+0", "-1:+2", "5:+2x",
        "x:+2", "5:+2!!"}) {
    EXPECT_THROW((void)parse_grow_plan(bad), std::invalid_argument) << bad;
  }
}

TEST_F(ElasticCg, LanczosGrowsMidSolveAndStillConverges) {
  // The Lanczos driver survives a grow too (always rollback mode): the
  // known lowest eigenvalue of the 2-D Poisson matrix must come out on
  // every founder and on the joiner.
  constexpr int kRanks = 3;
  const auto a = matgen::poisson5_2d(16, 16);
  const double expected = 4.0 - 4.0 * std::cos(std::numbers::pi / 17.0);

  ResilienceOptions resilience = fast_options();
  resilience.grows.push_back({7, 1, /*rollback=*/true});
  std::vector<ResilientLanczosResult> joiners;
  std::mutex mutex;
  resilience.on_joiner_lanczos_result = [&](ResilientLanczosResult result) {
    std::lock_guard<std::mutex> lock(mutex);
    joiners.push_back(std::move(result));
  };

  minimpi::RuntimeOptions runtime;
  runtime.ranks = kRanks;
  std::vector<ResilientLanczosResult> results(kRanks);
  minimpi::run(runtime, [&](minimpi::Comm& comm) {
    auto result = resilient_lanczos(comm, a, resilience);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(result);
  });

  ASSERT_EQ(joiners.size(), 1u);
  std::vector<const ResilientLanczosResult*> all;
  for (const auto& r : results) all.push_back(&r);
  all.push_back(&joiners.front());
  for (const ResilientLanczosResult* result : all) {
    EXPECT_TRUE(result->lanczos.converged);
    EXPECT_EQ(result->recovery.grows, 1);
    EXPECT_EQ(result->recovery.final_size, kRanks + 1);
    EXPECT_GT(result->recovery.rows_migrated, 0);
    EXPECT_LT(result->recovery.rows_migrated,
              result->recovery.rows_full_replication);
    EXPECT_NEAR(result->lanczos.smallest(), expected, 1e-6);
  }
}

}  // namespace
}  // namespace hspmv::solvers
