// Seeded fault-injection (chaos) layer for the minimpi runtime.
//
// The engine's correctness claim — that all spMVM variants are numerically
// interchangeable and differ only in how communication hides behind
// computation — must hold under *any* legal communication schedule, not
// just the happy path. A FaultInjector, driven by a ChaosConfig threaded
// through RuntimeOptions, perturbs the runtime within the envelope MPI
// semantics allow: it holds matched transfers back, reorders the delivery
// queue, jitters barrier arrival, and makes test() spuriously report
// "still pending" a bounded number of times. None of these may change any
// computed result bitwise; the chaos test tier asserts exactly that.
//
// Two knobs are deliberately *outside* the legal envelope: a transfer
// error injected on a chosen message window, either as a *transient*
// fault (the affected requests error with FaultKind::kTransient and the
// message may be reposted — the retry/backoff layer's test vector) or as
// the legacy *poison* (the whole board errors permanently) — verifying
// that the engine surfaces communication failures cleanly instead of
// deadlocking.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/prng.hpp"

namespace hspmv::minimpi {

/// Failure taxonomy of the fault-tolerant execution layer (docs/
/// resilience.md). Transient: the operation failed but the channel is
/// intact — repost and retry. Permanent: a rank died or a communicator
/// was revoked — recovery requires shrink + rebuild + restore.
enum class FaultKind {
  kTransient,
  kPermanent,
};

const char* fault_kind_name(FaultKind kind);

/// Typed communication failure, thrown by wait/test/collectives instead
/// of a bare std::runtime_error (which it still derives from, so legacy
/// catch sites keep working). `rank` is the world rank the fault is
/// attributed to (-1 when unattributable, e.g. a poisoned board or a
/// transient transfer fault), `epoch` the board's failure epoch at throw
/// time — it bumps once per declared rank death, so survivors can tell a
/// stale fault from a fresh one.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, int rank, std::uint64_t epoch,
             const std::string& message)
      : std::runtime_error(message), kind_(kind), rank_(rank), epoch_(epoch) {}

  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  FaultKind kind_;
  int rank_;
  std::uint64_t epoch_;
};

/// Chaos knobs. Default-constructed: everything off (zero overhead).
struct ChaosConfig {
  /// Master switch; disabled injectors make no PRNG draws at all.
  bool enabled = false;
  /// Seeds the decision streams. Two runs with the same seed draw the
  /// same decision sequence (per decision point; the interleaving across
  /// threads still follows the scheduler).
  std::uint64_t seed = 0;

  /// Probability that a freshly matched transfer is held back, and for
  /// how many progress visits at most. Models delayed message matching /
  /// a late progress engine.
  double match_hold_probability = 0.3;
  int max_hold_rounds = 3;

  /// Probability that a matched transfer is inserted at a random position
  /// of the delivery queue instead of the back. Completion order of
  /// distinct requests is unordered in MPI, so any permutation is legal —
  /// matching itself stays FIFO per (comm, source, dest, tag).
  double reorder_probability = 0.3;

  /// Probability and cap of a sleep injected at barrier arrival (and
  /// thereby into every collective's publish slots). Models skewed rank
  /// timing.
  double barrier_jitter_probability = 0.4;
  double max_barrier_jitter_seconds = 0.001;

  /// Probability that test() reports an already-complete request as still
  /// pending, bounded per request so polling loops terminate. Models the
  /// retry storms of a slow progress engine.
  double spurious_test_probability = 0.25;
  int max_spurious_test_per_request = 8;

  /// What an injected transfer failure does to the board.
  enum class FailureMode {
    /// Legacy irrecoverable failure: the whole board poisons — every
    /// pending and future request errors with FaultKind::kPermanent.
    kPoison,
    /// Transient fault: only the matched transfer's requests error with
    /// FaultKind::kTransient; the message may be reposted (eager payloads
    /// are retained for transport-level redelivery, so a receiver-only
    /// retry also succeeds). The board stays healthy.
    kTransient,
  };

  /// Index (in match order) of the first message whose transfer fails.
  /// kNoFailure disables injection entirely.
  static constexpr std::uint64_t kNoFailure = ~std::uint64_t{0};
  std::uint64_t fail_transfer_index = kNoFailure;
  /// How many consecutive match indices fail, starting at
  /// fail_transfer_index — > 1 re-fails reposted messages, exercising the
  /// retry layer's bounded-attempt escalation.
  std::uint64_t fail_transfer_count = 1;
  FailureMode failure_mode = FailureMode::kPoison;

  /// Everything on at the default intensities — the chaos tier's profile.
  static ChaosConfig standard(std::uint64_t seed) {
    ChaosConfig config;
    config.enabled = true;
    config.seed = seed;
    return config;
  }
};

/// Draws the chaos decisions. Thread-safe; every decision point consumes
/// PRNG state under an internal lock, so two injectors built from the
/// same config produce identical decision sequences.
class FaultInjector {
 public:
  FaultInjector() = default;  ///< disabled
  explicit FaultInjector(const ChaosConfig& config)
      : config_(config), rng_(config.seed) {}

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const ChaosConfig& config() const { return config_; }

  /// Rounds to hold a freshly matched transfer back; 0 = start normally.
  int match_hold_rounds();

  /// Whether to insert a matched transfer at a random delivery-queue slot.
  bool reorder_delivery();
  /// Insertion slot in [0, queue_size].
  std::size_t pick_insert_position(std::size_t queue_size);

  /// Sleep to inject before arriving at a collective barrier; zero = none.
  std::chrono::nanoseconds barrier_jitter();

  /// Whether test() should report a complete request as still pending
  /// (caller enforces the per-request bound).
  bool lie_about_completion();

  /// True for match indices inside the configured fail window.
  [[nodiscard]] bool should_fail_transfer(std::uint64_t match_index) const {
    return config_.enabled &&
           match_index >= config_.fail_transfer_index &&
           match_index - config_.fail_transfer_index <
               config_.fail_transfer_count;
  }

 private:
  bool roll(double probability);

  ChaosConfig config_{};
  std::mutex mutex_;
  util::Xoshiro256 rng_{0};
};

}  // namespace hspmv::minimpi
