#include "spmv/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "team/thread_team.hpp"
#include "util/stats.hpp"

namespace hspmv::spmv {

std::vector<sparse::index_t> partition_rows(const sparse::CsrMatrix& a,
                                            int parts,
                                            PartitionStrategy strategy) {
  if (parts < 1) {
    throw std::invalid_argument("partition_rows: parts must be >= 1");
  }
  std::vector<sparse::index_t> boundaries(static_cast<std::size_t>(parts) +
                                          1);
  if (strategy == PartitionStrategy::kBalancedRows) {
    for (int p = 0; p <= parts; ++p) {
      boundaries[static_cast<std::size_t>(p)] = static_cast<sparse::index_t>(
          static_cast<std::int64_t>(a.rows()) * p / parts);
    }
    return boundaries;
  }
  const auto wide = team::nnz_balanced_boundaries(a.row_ptr(), parts);
  for (std::size_t i = 0; i < wide.size(); ++i) {
    boundaries[i] = static_cast<sparse::index_t>(wide[i]);
  }
  return boundaries;
}

std::vector<std::int64_t> partition_nnz(
    const sparse::CsrMatrix& a,
    std::span<const sparse::index_t> boundaries) {
  if (boundaries.size() < 2 || boundaries.front() != 0 ||
      boundaries.back() != a.rows()) {
    throw std::invalid_argument("partition_nnz: bad boundaries");
  }
  const auto row_ptr = a.row_ptr();
  std::vector<std::int64_t> nnz(boundaries.size() - 1);
  for (std::size_t p = 0; p + 1 < boundaries.size(); ++p) {
    nnz[p] = row_ptr[static_cast<std::size_t>(boundaries[p + 1])] -
             row_ptr[static_cast<std::size_t>(boundaries[p])];
  }
  return nnz;
}

double partition_imbalance(const sparse::CsrMatrix& a,
                           std::span<const sparse::index_t> boundaries) {
  const auto nnz = partition_nnz(a, boundaries);
  // HSPMV-CHECK-ALLOW(first-touch): partitioner input copy; sequential setup path
  std::vector<double> loads(nnz.begin(), nnz.end());
  return util::imbalance_factor(loads);
}

MigrationPlan plan_migration(std::span<const sparse::index_t> old_boundaries,
                             std::span<const int> old_owner_of,
                             std::span<const sparse::index_t> new_boundaries) {
  if (old_boundaries.size() < 2 || new_boundaries.size() < 2 ||
      old_boundaries.front() != 0 || new_boundaries.front() != 0 ||
      old_boundaries.back() != new_boundaries.back()) {
    throw std::invalid_argument("plan_migration: bad boundary arrays");
  }
  if (old_owner_of.size() + 1 != old_boundaries.size()) {
    throw std::invalid_argument(
        "plan_migration: old_owner_of must have one entry per old rank");
  }
  MigrationPlan plan;
  plan.rows_full_replication =
      static_cast<std::int64_t>(new_boundaries.back());
  const int old_parts = static_cast<int>(old_owner_of.size());
  const int new_parts = static_cast<int>(new_boundaries.size()) - 1;
  // Sweep the new partitions in order, intersecting each with the old
  // ranges — both boundary arrays are nondecreasing, so the scan over the
  // old parts never rewinds and the emitted ranges come out sorted by
  // (dest, row_begin) by construction.
  int s = 0;
  for (int d = 0; d < new_parts; ++d) {
    const sparse::index_t d_begin = new_boundaries[static_cast<std::size_t>(d)];
    const sparse::index_t d_end =
        new_boundaries[static_cast<std::size_t>(d) + 1];
    while (s < old_parts &&
           old_boundaries[static_cast<std::size_t>(s) + 1] <= d_begin) {
      ++s;
    }
    for (int t = s; t < old_parts; ++t) {
      const sparse::index_t lo =
          std::max(d_begin, old_boundaries[static_cast<std::size_t>(t)]);
      const sparse::index_t hi =
          std::min(d_end, old_boundaries[static_cast<std::size_t>(t) + 1]);
      if (lo >= hi) {
        if (old_boundaries[static_cast<std::size_t>(t)] >= d_end) break;
        continue;
      }
      const int owner = old_owner_of[static_cast<std::size_t>(t)];
      const std::int64_t rows = static_cast<std::int64_t>(hi - lo);
      if (owner < 0) {
        plan.seeded.push_back(MigrationMove{-1, d, lo, hi});
        plan.rows_seeded += rows;
      } else if (owner == d) {
        plan.rows_kept += rows;
      } else {
        plan.moves.push_back(MigrationMove{owner, d, lo, hi});
        plan.rows_moved += rows;
      }
    }
  }
  return plan;
}

}  // namespace hspmv::spmv
