// Reverse Cuthill-McKee bandwidth-reducing reordering [Cuthill & McKee
// 1969], the transformation the paper applied to the Hamiltonian matrix
// (Sect. 1.3.1) to improve RHS locality and near-neighbour communication.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::sparse {

/// Compute the RCM permutation of the symmetrized pattern of `a`.
/// Returns `new_of` with new_of[old] = new, usable directly with
/// CsrMatrix::permute_symmetric. Disconnected components are processed in
/// order of their discovered pseudo-peripheral start vertices.
std::vector<index_t> rcm_permutation(const CsrMatrix& a);

/// Convenience: B = P A P^T with P from rcm_permutation(a).
CsrMatrix rcm_reorder(const CsrMatrix& a);

/// Find a pseudo-peripheral vertex of the component containing `start`
/// using the George-Liu doubled-BFS heuristic. Exposed for tests.
index_t pseudo_peripheral_vertex(const CsrMatrix& pattern, index_t start);

}  // namespace hspmv::sparse
