#include "spmv/comm_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "team/thread_team.hpp"

namespace hspmv::spmv {

using sparse::index_t;
using sparse::offset_t;

GatherSchedule::GatherSchedule(const CommPlan& plan, int parties) {
  if (parties < 1) {
    throw std::invalid_argument("GatherSchedule: parties must be >= 1");
  }
  block_offsets_.reserve(plan.send_blocks.size() + 1);
  block_offsets_.push_back(0);
  for (const auto& block : plan.send_blocks) {
    block_offsets_.push_back(block_offsets_.back() +
                             static_cast<std::int64_t>(block.gather.size()));
  }
  bounds_.reserve(static_cast<std::size_t>(parties) + 1);
  bounds_.push_back(0);
  for (int p = 0; p < parties; ++p) {
    bounds_.push_back(
        team::static_chunk(0, block_offsets_.back(), p, parties).end);
  }
}

int owner_of(std::span<const index_t> boundaries, index_t col) {
  // boundaries is nondecreasing with front 0 and back = rows; the owner
  // is the part whose [b[p], b[p+1]) contains col. upper_bound handles
  // empty parts (they own no columns).
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), col);
  return static_cast<int>(it - boundaries.begin()) - 1;
}

PartitionCommStats analyze_partition(
    const sparse::CsrMatrix& global,
    std::span<const index_t> boundaries) {
  if (boundaries.size() < 2 || boundaries.front() != 0 ||
      boundaries.back() != global.rows()) {
    throw std::invalid_argument("analyze_partition: bad boundaries");
  }
  const auto parts = static_cast<int>(boundaries.size()) - 1;
  PartitionCommStats stats;
  stats.local_nnz.assign(static_cast<std::size_t>(parts), 0);
  stats.nonlocal_nnz.assign(static_cast<std::size_t>(parts), 0);
  stats.recv_from.resize(static_cast<std::size_t>(parts));

  const auto row_ptr = global.row_ptr();
  const auto col_idx = global.col_idx();
  std::vector<index_t> nonlocal;
  for (int p = 0; p < parts; ++p) {
    const index_t row_begin = boundaries[static_cast<std::size_t>(p)];
    const index_t row_end = boundaries[static_cast<std::size_t>(p) + 1];
    nonlocal.clear();
    for (offset_t k = row_ptr[static_cast<std::size_t>(row_begin)];
         k < row_ptr[static_cast<std::size_t>(row_end)]; ++k) {
      const index_t c = col_idx[static_cast<std::size_t>(k)];
      if (c >= row_begin && c < row_end) {
        ++stats.local_nnz[static_cast<std::size_t>(p)];
      } else {
        ++stats.nonlocal_nnz[static_cast<std::size_t>(p)];
        nonlocal.push_back(c);
      }
    }
    std::sort(nonlocal.begin(), nonlocal.end());
    nonlocal.erase(std::unique(nonlocal.begin(), nonlocal.end()),
                   nonlocal.end());
    auto& peers = stats.recv_from[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < nonlocal.size();) {
      const int owner = owner_of(boundaries, nonlocal[i]);
      std::int64_t count = 0;
      while (i < nonlocal.size() &&
             owner_of(boundaries, nonlocal[i]) == owner) {
        ++count;
        ++i;
      }
      peers.emplace_back(owner, count);
    }
  }
  return stats;
}

LocalPlan build_local_plan(const sparse::CsrMatrix& local_block,
                           std::span<const index_t> boundaries, int part) {
  if (part < 0 || part + 1 >= static_cast<int>(boundaries.size())) {
    throw std::invalid_argument("build_local_plan: part out of range");
  }
  const index_t row_begin = boundaries[static_cast<std::size_t>(part)];
  const index_t row_end = boundaries[static_cast<std::size_t>(part) + 1];
  if (local_block.rows() != row_end - row_begin) {
    throw std::invalid_argument(
        "build_local_plan: block does not match the boundaries");
  }
  const index_t local_rows = row_end - row_begin;

  LocalPlan result;
  // Collect unique nonlocal columns.
  {
    std::vector<index_t> nonlocal;
    for (const index_t c : local_block.col_idx()) {
      if (c < row_begin || c >= row_end) nonlocal.push_back(c);
    }
    std::sort(nonlocal.begin(), nonlocal.end());
    nonlocal.erase(std::unique(nonlocal.begin(), nonlocal.end()),
                   nonlocal.end());
    result.halo_globals = std::move(nonlocal);
  }

  // Recv blocks: halo runs per owner (owners own contiguous ranges, and
  // the halo is globally sorted, so runs are contiguous).
  result.plan.local_rows = local_rows;
  result.plan.halo_count =
      static_cast<index_t>(result.halo_globals.size());
  for (std::size_t i = 0; i < result.halo_globals.size();) {
    const int owner = owner_of(boundaries, result.halo_globals[i]);
    const auto offset = static_cast<index_t>(i);
    index_t count = 0;
    while (i < result.halo_globals.size() &&
           owner_of(boundaries, result.halo_globals[i]) == owner) {
      ++count;
      ++i;
    }
    result.plan.recv_blocks.push_back(RecvBlock{owner, offset, count});
  }

  // Rebuild the block with columns relabeled to the [owned | halo]
  // numbering, restoring the per-row ascending order the split kernels
  // rely on.
  {
    const auto old_cols = local_block.col_idx();
    const auto old_vals = local_block.val();
    const auto row_ptr_in = local_block.row_ptr();
    std::vector<offset_t> row_ptr(row_ptr_in.begin(), row_ptr_in.end());
    util::AlignedVector<index_t> cols(old_cols.size());
    util::AlignedVector<sparse::value_t> vals(old_vals.size());
    std::vector<std::pair<index_t, sparse::value_t>> scratch;
    for (index_t i = 0; i < local_block.rows(); ++i) {
      const auto begin =
          static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
      const auto end = static_cast<std::size_t>(
          row_ptr[static_cast<std::size_t>(i) + 1]);
      scratch.clear();
      for (std::size_t k = begin; k < end; ++k) {
        const index_t c = old_cols[k];
        index_t relabeled;
        if (c >= row_begin && c < row_end) {
          relabeled = c - row_begin;
        } else {
          const auto it = std::lower_bound(result.halo_globals.begin(),
                                           result.halo_globals.end(), c);
          relabeled = local_rows +
                      static_cast<index_t>(it - result.halo_globals.begin());
        }
        scratch.emplace_back(relabeled, old_vals[k]);
      }
      std::sort(scratch.begin(), scratch.end());
      for (std::size_t k = begin; k < end; ++k) {
        cols[k] = scratch[k - begin].first;
        vals[k] = scratch[k - begin].second;
      }
    }
    result.matrix = sparse::CsrMatrix(
        local_rows, local_rows + result.plan.halo_count, std::move(row_ptr),
        std::move(cols), std::move(vals));
  }
  return result;
}

}  // namespace hspmv::spmv
