#include "solvers/tridiag.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace hspmv::solvers {
namespace {

TEST(Tridiag, EmptyAndSingle) {
  EXPECT_TRUE(tridiagonal_eigenvalues({}, {}).empty());
  const auto single = tridiagonal_eigenvalues({3.5}, {});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 3.5);
}

TEST(Tridiag, TwoByTwo) {
  // [[1, 2], [2, 1]] -> eigenvalues -1 and 3.
  const auto ev = tridiagonal_eigenvalues({1.0, 1.0}, {2.0});
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(Tridiag, DiagonalMatrix) {
  const auto ev = tridiagonal_eigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_DOUBLE_EQ(ev[0], 1.0);
  EXPECT_DOUBLE_EQ(ev[1], 2.0);
  EXPECT_DOUBLE_EQ(ev[2], 3.0);
}

TEST(Tridiag, DiscreteLaplacianSpectrum) {
  // Tridiag(-1, 2, -1) of size n: lambda_k = 2 - 2 cos(k pi / (n+1)).
  const int n = 50;
  std::vector<double> alpha(n, 2.0), beta(n - 1, -1.0);
  const auto ev = tridiagonal_eigenvalues(alpha, beta);
  ASSERT_EQ(ev.size(), static_cast<std::size_t>(n));
  for (int k = 1; k <= n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(k * std::numbers::pi / (n + 1));
    EXPECT_NEAR(ev[static_cast<std::size_t>(k - 1)], expected, 1e-10);
  }
}

TEST(Tridiag, TraceAndSumPreserved) {
  std::vector<double> alpha{1.0, -2.0, 0.5, 4.0, -1.5};
  std::vector<double> beta{0.3, -1.1, 2.0, 0.7};
  const auto ev = tridiagonal_eigenvalues(alpha, beta);
  double trace = 0.0;
  for (double v : alpha) trace += v;
  double sum = 0.0;
  for (double v : ev) sum += v;
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(Tridiag, SizeMismatchThrows) {
  EXPECT_THROW((void)tridiagonal_eigenvalues({1.0, 2.0}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::solvers
