// The batching query server (spmv/server.hpp): queue semantics (FIFO
// coalescing, deadline-bounded partial batches, back-pressure), the
// collective serve loop's correctness against the dense oracle, and the
// recovery path — a rank dying mid-batch must not lose the pending
// batch: survivors shrink, rebuild, replay, and the queue still drains.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "common/seeded_fixture.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "sparse/coo.hpp"
#include "spmv/server.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

class SpmvServerTest : public testutil::SeededTest {};

/// Submit `count` random right-hand sides with ids 0..count-1; returns
/// the submitted vectors (for oracle checks). Requests the queue
/// rejects (back-pressure) are NOT submitted again; their slots are
/// dropped from the returned list.
std::vector<std::vector<value_t>> submit_requests(BatchQueue& queue,
                                                  std::size_t count,
                                                  std::size_t n,
                                                  std::uint64_t seed) {
  std::vector<std::vector<value_t>> accepted;
  for (std::size_t r = 0; r < count; ++r) {
    auto x = testutil::random_vector(n, testutil::sub_seed(seed, r));
    auto copy = x;
    if (queue.try_submit(r, x)) accepted.push_back(std::move(copy));
  }
  return accepted;
}

TEST_F(SpmvServerTest, QueueCoalescesInSubmissionOrder) {
  BatchQueue queue(/*capacity=*/16, /*max_block=*/3, /*max_wait_s=*/10.0);
  std::vector<std::vector<value_t>> xs;
  for (std::uint64_t r = 0; r < 7; ++r) {
    std::vector<value_t> x{static_cast<value_t>(r)};
    ASSERT_TRUE(queue.try_submit(r, x));
  }
  queue.close();
  // Closed queue: batches pop immediately — full blocks first, then the
  // partial remainder, then the empty shutdown batch.
  std::vector<std::vector<std::uint64_t>> batches;
  for (;;) {
    const auto batch = queue.next_batch();
    if (batch.empty()) break;
    std::vector<std::uint64_t> ids;
    for (const ServerRequest& r : batch) ids.push_back(r.id);
    batches.push_back(ids);
  }
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(batches[1], (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(batches[2], (std::vector<std::uint64_t>{6}));
}

TEST_F(SpmvServerTest, QueueAppliesBackPressureAtCapacity) {
  BatchQueue queue(/*capacity=*/4, /*max_block=*/8, /*max_wait_s=*/10.0);
  for (std::uint64_t r = 0; r < 4; ++r) {
    std::vector<value_t> x{1.0, 2.0};
    ASSERT_TRUE(queue.try_submit(r, x));
  }
  // Burst beyond capacity: rejected, and the caller keeps the payload
  // (not moved-from) so it can retry.
  std::vector<value_t> extra{3.0, 4.0};
  EXPECT_FALSE(queue.try_submit(99, extra));
  EXPECT_EQ(extra, (std::vector<value_t>{3.0, 4.0}));
  EXPECT_EQ(queue.size(), 4u);
  // Draining one batch frees capacity again.
  queue.close();
  (void)queue.next_batch();
  EXPECT_EQ(queue.size(), 0u);
  // ... but a closed queue admits nothing.
  EXPECT_FALSE(queue.try_submit(100, extra));
}

TEST_F(SpmvServerTest, QueueDeadlineReleasesPartialBatch) {
  // Two requests against max_block 8: without the deadline next_batch
  // would wait for six more; the oldest waiter's max_wait releases the
  // partial batch instead.
  BatchQueue queue(/*capacity=*/8, /*max_block=*/8, /*max_wait_s=*/0.05);
  for (std::uint64_t r = 0; r < 2; ++r) {
    std::vector<value_t> x{static_cast<value_t>(r)};
    ASSERT_TRUE(queue.try_submit(r, x));
  }
  const double before = queue.now();
  const auto batch = queue.next_batch();
  const double waited = queue.now() - before;
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_LT(waited, 5.0);  // returned via deadline, not a hang
}

TEST_F(SpmvServerTest, QueueValidatesConstruction) {
  EXPECT_THROW(BatchQueue(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(BatchQueue(1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(BatchQueue(1, 1, -1.0), std::invalid_argument);
}

TEST_F(SpmvServerTest, ServeDrainsQueueAndMatchesOracle) {
  // 5 requests, max_block 2: deterministic batch plan [2, 2, 1], every
  // result equal to the dense reference, completions in submission
  // order, sane latency/throughput accounting.
  constexpr std::size_t kRequests = 5;
  const CsrMatrix a = matgen::random_sparse(150, 6, seed(1));
  std::mutex check_mutex;
  minimpi::run(3, [&](minimpi::Comm& comm) {
    BatchQueue queue(/*capacity=*/16, /*max_block=*/2, /*max_wait_s=*/0.0);
    std::vector<std::vector<value_t>> xs;
    if (comm.rank() == 0) {
      xs = submit_requests(queue, kRequests,
                           static_cast<std::size_t>(a.cols()), seed(2));
      ASSERT_EQ(xs.size(), kRequests);
      queue.close();
    }
    ServerOptions options;
    options.keep_results = true;
    SpmvServer server(comm, a, /*threads=*/2, Variant::kTaskMode, {},
                      options);
    const ServerReport report = server.serve(queue);
    if (comm.rank() != 0) return;

    std::lock_guard<std::mutex> lock(check_mutex);
    EXPECT_EQ(report.rebuilds, 0);
    EXPECT_EQ(report.batch_widths, (std::vector<int>{2, 2, 1}));
    ASSERT_EQ(report.completed.size(), kRequests);
    for (std::size_t r = 0; r < kRequests; ++r) {
      const CompletedRequest& done = report.completed[r];
      EXPECT_EQ(done.id, r);  // deterministic FIFO completion order
      EXPECT_GE(done.latency_s(), 0.0);
      const auto expected = testutil::dense_reference(a, xs[r]);
      ASSERT_EQ(done.y.size(), expected.size());
      EXPECT_LT(testutil::max_abs_diff(done.y, expected), 1e-12)
          << "request " << r;
    }
    EXPECT_LE(report.latency_percentile(50.0),
              report.latency_percentile(99.0));
    EXPECT_GT(report.throughput_rps(), 0.0);
  });
}

TEST_F(SpmvServerTest, DegenerateMaxBlockOneServesEveryRequestAlone) {
  const CsrMatrix a = matgen::random_banded(80, 10, 4, seed(3));
  minimpi::run(2, [&](minimpi::Comm& comm) {
    BatchQueue queue(/*capacity=*/8, /*max_block=*/1, /*max_wait_s=*/0.0);
    std::vector<std::vector<value_t>> xs;
    if (comm.rank() == 0) {
      xs = submit_requests(queue, 3, static_cast<std::size_t>(a.cols()),
                           seed(4));
      queue.close();
    }
    ServerOptions options;
    options.keep_results = true;
    SpmvServer server(comm, a, /*threads=*/2, Variant::kVectorNoOverlap, {},
                      options);
    const ServerReport report = server.serve(queue);
    if (comm.rank() != 0) return;
    EXPECT_EQ(report.batch_widths, (std::vector<int>{1, 1, 1}));
    for (std::size_t r = 0; r < xs.size(); ++r) {
      EXPECT_EQ(report.completed[r].batch_width, 1);
      EXPECT_LT(testutil::max_abs_diff(report.completed[r].y,
                                       testutil::dense_reference(a, xs[r])),
                1e-12);
    }
  });
}

TEST_F(SpmvServerTest, ServesMatrixWithEmptyRows) {
  // Structurally empty rows must come back as exact zeros through the
  // whole broadcast -> blocked apply -> gather round trip.
  std::vector<sparse::Triplet> triplets;
  constexpr index_t kN = 61;
  for (index_t i = 0; i < kN; i += 2) {
    triplets.push_back({i, i, 2.0});
    if (i + 2 < kN) triplets.push_back({i, i + 2, -1.0});
  }
  const CsrMatrix a(kN, kN, triplets);
  minimpi::run(2, [&](minimpi::Comm& comm) {
    BatchQueue queue(/*capacity=*/8, /*max_block=*/3, /*max_wait_s=*/0.0);
    std::vector<std::vector<value_t>> xs;
    if (comm.rank() == 0) {
      xs = submit_requests(queue, 3, static_cast<std::size_t>(kN), seed(5));
      queue.close();
    }
    ServerOptions options;
    options.keep_results = true;
    SpmvServer server(comm, a, /*threads=*/2, Variant::kVectorNaiveOverlap,
                      {}, options);
    const ServerReport report = server.serve(queue);
    if (comm.rank() != 0) return;
    for (std::size_t r = 0; r < xs.size(); ++r) {
      const auto& y = report.completed[r].y;
      EXPECT_LT(testutil::max_abs_diff(y, testutil::dense_reference(a, xs[r])),
                1e-13);
      for (std::size_t i = 1; i < y.size(); i += 2) {
        EXPECT_EQ(y[i], 0.0) << "empty row " << i;
      }
    }
  });
}

TEST_F(SpmvServerTest, RankDeathMidBatchReplaysAndDrains) {
  // Rank 1 dies right before batch 1's apply. The victim's serve()
  // rethrows (it leaves the service); the survivors shrink, rebuild,
  // replay the pending batch, and the queue drains to completion with
  // every result still matching the oracle.
  constexpr int kRanks = 3;
  constexpr int kVictim = 1;
  constexpr std::size_t kRequests = 6;
  const CsrMatrix a = matgen::random_banded(120, 16, 5, seed(6));
  std::atomic<int> victim_faults{0};
  std::mutex check_mutex;
  minimpi::run(kRanks, [&](minimpi::Comm& comm) {
    BatchQueue queue(/*capacity=*/16, /*max_block=*/2, /*max_wait_s=*/0.0);
    std::vector<std::vector<value_t>> xs;
    if (comm.rank() == 0) {
      xs = submit_requests(queue, kRequests,
                           static_cast<std::size_t>(a.cols()), seed(7));
      queue.close();
    }
    ServerOptions options;
    options.keep_results = true;
    options.before_apply = [](int batch_index, const minimpi::Comm& c) {
      if (batch_index == 1 && c.rank() == kVictim) {
        c.simulate_rank_failure();
      }
    };
    SpmvServer server(comm, a, /*threads=*/2, Variant::kVectorNoOverlap, {},
                      options);
    ServerReport report;
    try {
      report = server.serve(queue);
    } catch (const minimpi::FaultError& fault) {
      // Only the victim's serve() may rethrow, and only for its own
      // death (it must not abort the board via run()'s rethrow).
      EXPECT_EQ(comm.rank(), kVictim);
      EXPECT_EQ(fault.kind(), minimpi::FaultKind::kPermanent);
      EXPECT_EQ(fault.rank(), kVictim);
      victim_faults.fetch_add(1);
      return;
    }
    EXPECT_NE(comm.rank(), kVictim) << "victim finished serve() alive";
    EXPECT_EQ(server.spmv().comm().size(), kRanks - 1);
    EXPECT_GE(report.rebuilds, 1);
    if (comm.rank() != 0) return;

    std::lock_guard<std::mutex> lock(check_mutex);
    ASSERT_EQ(report.completed.size(), kRequests);
    for (std::size_t r = 0; r < kRequests; ++r) {
      EXPECT_EQ(report.completed[r].id, r);
      EXPECT_LT(testutil::max_abs_diff(report.completed[r].y,
                                       testutil::dense_reference(a, xs[r])),
                1e-12)
          << "request " << r;
    }
  });
  EXPECT_EQ(victim_faults.load(), 1);
}

TEST_F(SpmvServerTest, OversizedRequestIsRejected) {
  const CsrMatrix a = matgen::laplacian1d(32);
  minimpi::run(1, [&](minimpi::Comm& comm) {
    BatchQueue queue(/*capacity=*/4, /*max_block=*/2, /*max_wait_s=*/0.0);
    std::vector<value_t> wrong(16, 1.0);  // != global rows
    ASSERT_TRUE(queue.try_submit(0, wrong));
    queue.close();
    SpmvServer server(comm, a, /*threads=*/2, Variant::kVectorNoOverlap);
    EXPECT_THROW((void)server.serve(queue), std::invalid_argument);
  });
}

}  // namespace
}  // namespace hspmv::spmv
