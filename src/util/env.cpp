#include "util/env.hpp"

#include <cstdlib>

namespace hspmv::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string v = value;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace hspmv::util
