// Token stream of the hspmv-check frontend (src/analysis/).
//
// The static checks in this subsystem prove source-level invariants —
// uniform collectives, nonblocking buffer lifetimes, first-touch
// placement, write-range claims, pinned reduction order — against the
// project's own coding idioms. They consume a FileModel (model.hpp)
// built from this token stream; the stream itself is produced by the
// Lexer (lexer.hpp), which strips comments and preprocessor lines while
// recording HSPMV-CHECK-ALLOW suppressions.
#pragma once

#include <string>

namespace hspmv::analysis {

enum class Tok {
  kIdent,    ///< identifiers and keywords (Token::keyword distinguishes)
  kNumber,   ///< integer / floating literal (pp-number, one token)
  kString,   ///< string literal, including raw strings
  kChar,     ///< character literal
  kPunct,    ///< operators and punctuation, longest-match (e.g. "+=")
  kEnd,      ///< one-past-the-last sentinel
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int line = 0;        ///< 1-based source line
  bool keyword = false;  ///< kIdent that is a C++ keyword
};

}  // namespace hspmv::analysis
