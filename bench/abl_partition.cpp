// EXP-A2 — ablation: balanced-rows vs balanced-nonzeros partitioning
// (paper footnote 2: "We use a balanced distribution of nonzeros across
// the MPI processes here" — noting that balancing computation and
// communication simultaneously is generally hard).

#include <cstdio>

#include "cluster/cluster_model.hpp"
#include "common/paper_matrices.hpp"
#include "matgen/random_matrix.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/partition.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hspmv;

void analyze(const char* name, const sparse::CsrMatrix& a, int parts) {
  util::Table table({"strategy", "nnz imbalance (max/mean)",
                     "halo elements", "max halo / part"});
  for (const auto strategy : {spmv::PartitionStrategy::kBalancedRows,
                              spmv::PartitionStrategy::kBalancedNonzeros}) {
    const auto boundaries = spmv::partition_rows(a, parts, strategy);
    const auto stats = spmv::analyze_partition(a, boundaries);
    std::int64_t max_halo = 0;
    for (const auto& peers : stats.recv_from) {
      std::int64_t halo = 0;
      for (const auto& [peer, count] : peers) halo += count;
      max_halo = std::max(max_halo, halo);
    }
    table.add_row(
        {strategy == spmv::PartitionStrategy::kBalancedRows
             ? "balanced rows"
             : "balanced nonzeros",
         util::Table::cell(spmv::partition_imbalance(a, boundaries), 3),
         util::Table::cell(stats.total_halo_elements()),
         util::Table::cell(max_halo)});
  }
  std::printf("%s, %d parts:\n%s\n", name, parts,
              table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("abl_partition",
                      "ablation: row- vs nonzero-balanced partitioning");
  cli.add_option("parts", "64", "number of partitions");
  if (!cli.parse(argc, argv)) return 1;
  const int parts = static_cast<int>(cli.get_int("parts"));

  std::printf("EXP-A2 — partitioning-strategy ablation\n\n");
  analyze("HMeP (scaled)", bench::make_hmep(1).matrix, parts);
  analyze("sAMG (scaled)", bench::make_samg(1).matrix, parts);
  analyze("power-law rows (adversarial)",
          matgen::random_power_law(100000, 4, 0.8, 5), parts);

  std::printf(
      "expected: for the paper's matrices the strategies are close "
      "(near-uniform row lengths); on skewed power-law rows the "
      "nonzero-balanced partition removes the multi-x compute imbalance "
      "at a modest halo cost.\n");
  return 0;
}
