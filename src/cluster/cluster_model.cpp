#include "cluster/cluster_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perfmodel/code_balance.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/partition.hpp"

namespace hspmv::cluster {

const char* variant_name(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kVectorNoOverlap:
      return "vector w/o overlap";
    case KernelVariant::kVectorNaiveOverlap:
      return "vector w/ naive overlap";
    case KernelVariant::kTaskMode:
      return "task mode";
  }
  return "?";
}

const char* mapping_name(HybridMapping mapping) {
  switch (mapping) {
    case HybridMapping::kProcessPerCore:
      return "one process per physical core";
    case HybridMapping::kProcessPerDomain:
      return "one process per NUMA LD";
    case HybridMapping::kProcessPerNode:
      return "one process per node";
  }
  return "?";
}

ClusterSpec westmere_cluster() {
  return ClusterSpec{"Westmere cluster (QDR IB)", machine::westmere_ep(),
                     netmodel::qdr_infiniband()};
}

ClusterSpec cray_xe6() {
  return ClusterSpec{"Cray XE6 (Gemini)", machine::magny_cours(),
                     netmodel::cray_gemini()};
}

ClusterModel::ClusterModel(ClusterSpec spec) : spec_(std::move(spec)) {}

double ClusterModel::node_level_flops(double nnzr, double kappa) const {
  const double balance = perfmodel::crs_code_balance(nnzr, kappa);
  return spec_.node.spmv_bandwidth_node() / balance;
}

ClusterModel::ProcessGeometry ClusterModel::geometry(
    const ScenarioParams& params) const {
  const auto& node = spec_.node;
  ProcessGeometry g;
  switch (params.mapping) {
    case HybridMapping::kProcessPerCore:
      g.processes_per_node = node.cores_per_node();
      g.threads_per_process = 1;
      g.domains_per_process = 1;
      break;
    case HybridMapping::kProcessPerDomain:
      g.processes_per_node = node.numa_domains;
      g.threads_per_process = node.cores_per_domain;
      g.domains_per_process = 1;
      break;
    case HybridMapping::kProcessPerNode:
      g.processes_per_node = 1;
      g.threads_per_process = node.cores_per_node();
      g.domains_per_process = node.numa_domains;
      break;
  }
  g.compute_cores = g.threads_per_process;
  g.comm_thread_free = true;
  if (params.variant == KernelVariant::kTaskMode) {
    if (node.smt_per_core >= 2) {
      // The communication thread runs on a virtual core; no compute
      // resources are lost (Sect. 3.2 / Fig. 5 discussion).
      g.comm_thread_free = true;
    } else if (g.threads_per_process >= 2) {
      // Devote one physical core to communication.
      g.compute_cores = g.threads_per_process - 1;
      g.comm_thread_free = false;
    } else {
      // Single-threaded process without SMT: comm thread shares the core.
      g.comm_thread_free = false;
    }
  }
  return g;
}

double ClusterModel::process_bandwidth(const ProcessGeometry& g) const {
  const auto& node = spec_.node;
  const auto curve = node.spmv_curve();
  double bandwidth;
  if (g.domains_per_process >= 1 && g.processes_per_node <= node.numa_domains) {
    // One process per LD (or spanning several LDs): sum the saturation
    // curve over the domains it occupies.
    const int domains = g.domains_per_process;
    const int base = g.compute_cores / domains;
    const int extra = g.compute_cores % domains;
    bandwidth = 0.0;
    for (int d = 0; d < domains; ++d) {
      const int cores = base + (d < extra ? 1 : 0);
      if (cores >= 1) {
        bandwidth += curve.value(std::min(cores, node.cores_per_domain));
      }
    }
    if (g.compute_cores >= 1 && bandwidth == 0.0) {
      bandwidth = curve.value(1);
    }
  } else {
    // Several processes share one LD (pure MPI): the domain's cores are
    // all active, and each process gets its per-core share of the
    // *saturated* domain bandwidth.
    const int procs_per_domain =
        g.processes_per_node / node.numa_domains;
    const int active = std::min(procs_per_domain * g.compute_cores,
                                node.cores_per_domain);
    bandwidth = curve.value(std::max(active, 1)) /
                static_cast<double>(std::max(procs_per_domain, 1));
  }
  // A comm thread sharing the only compute core costs it part of its
  // issue slots; memory-bound kernels lose less — 25 % penalty.
  if (!g.comm_thread_free && g.compute_cores == g.threads_per_process) {
    bandwidth *= 0.75;
  }
  return bandwidth;
}

NodePrediction ClusterModel::predict(const sparse::CsrMatrix& matrix,
                                     int nodes,
                                     const ScenarioParams& params) const {
  if (nodes < 1) {
    throw std::invalid_argument("ClusterModel::predict: nodes must be >= 1");
  }
  if (params.volume_scale <= 0.0) {
    throw std::invalid_argument("ClusterModel::predict: bad volume_scale");
  }
  const auto& node = spec_.node;
  const ProcessGeometry g = geometry(params);
  const int processes = nodes * g.processes_per_node;
  if (matrix.rows() < processes) {
    throw std::invalid_argument(
        "ClusterModel::predict: more processes than matrix rows — use a "
        "larger (scaled) matrix");
  }

  const auto boundaries = spmv::partition_rows(
      matrix, processes, spmv::PartitionStrategy::kBalancedNonzeros);
  const auto stats = spmv::analyze_partition(matrix, boundaries);

  const double scale = params.volume_scale;
  const double comm_scale = params.comm_volume_scale > 0.0
                                ? params.comm_volume_scale
                                : params.volume_scale;
  const double process_bw = process_bandwidth(g);
  // Copy bandwidth for the gather phase scales like the spMVM share
  // relative to the LD's STREAM/spMVM ratio.
  const double copy_bw =
      process_bw * node.stream_bw_domain / node.spmv_bw_domain;
  // Send volumes: what each part sends = what others receive from it.
  std::vector<double> send_elements(static_cast<std::size_t>(processes),
                                    0.0);
  for (int p = 0; p < processes; ++p) {
    for (const auto& [peer, count] :
         stats.recv_from[static_cast<std::size_t>(p)]) {
      send_elements[static_cast<std::size_t>(peer)] +=
          static_cast<double>(count);
    }
  }

  const double full_problem_b_bytes =
      8.0 * static_cast<double>(matrix.rows()) * scale;
  const double single_domain_cache =
      static_cast<double>(node.cache_bytes_domain);

  // Internode traffic aggregated per receiving node: the NIC is the
  // shared bottleneck, so co-located processes' transfers serialize at
  // node level rather than each taking a fixed share.
  std::vector<double> node_inter_bytes(static_cast<std::size_t>(nodes), 0.0);
  std::vector<double> node_hops_weighted(static_cast<std::size_t>(nodes),
                                         0.0);
  for (int p = 0; p < processes; ++p) {
    const int my_node = p / g.processes_per_node;
    for (const auto& [peer, count] :
         stats.recv_from[static_cast<std::size_t>(p)]) {
      const int peer_node = peer / g.processes_per_node;
      if (peer_node == my_node) continue;
      const double bytes = 8.0 * static_cast<double>(count) * comm_scale;
      node_inter_bytes[static_cast<std::size_t>(my_node)] += bytes;
      node_hops_weighted[static_cast<std::size_t>(my_node)] +=
          bytes * netmodel::hop_distance(spec_.network, my_node, peer_node,
                                         nodes);
    }
  }

  double worst_time = 0.0;
  double worst_comm = 0.0;
  double worst_comp = 0.0;
  double worst_gather = 0.0;
  for (int p = 0; p < processes; ++p) {
    const auto rows_p = static_cast<double>(
        boundaries[static_cast<std::size_t>(p) + 1] -
        boundaries[static_cast<std::size_t>(p)]);
    const double local_nnz =
        static_cast<double>(stats.local_nnz[static_cast<std::size_t>(p)]);
    const double nonlocal_nnz = static_cast<double>(
        stats.nonlocal_nnz[static_cast<std::size_t>(p)]);
    const double nnz_p = local_nnz + nonlocal_nnz;
    if (nnz_p == 0.0) continue;
    const double nnzr_p = rows_p > 0 ? nnz_p / rows_p : 1.0;

    // kappa shrinks once the per-process RHS share approaches the cache.
    double halo_elems = 0.0;
    for (const auto& [peer, count] :
         stats.recv_from[static_cast<std::size_t>(p)]) {
      halo_elems += static_cast<double>(count);
    }
    const double b_bytes =
        8.0 * (rows_p * scale + halo_elems * comm_scale);
    const double cache_bytes =
        single_domain_cache * g.domains_per_process;
    double kappa_eff = 0.0;
    if (b_bytes > cache_bytes && full_problem_b_bytes > cache_bytes) {
      const double ratio = (b_bytes - cache_bytes) /
                           (full_problem_b_bytes /
                                static_cast<double>(node.numa_domains) -
                            cache_bytes);
      kappa_eff = params.kappa * std::clamp(ratio, 0.0, 1.0);
    }

    const bool split_kernel =
        params.variant != KernelVariant::kVectorNoOverlap;
    const double balance =
        split_kernel ? perfmodel::split_crs_code_balance(nnzr_p, kappa_eff)
                     : perfmodel::crs_code_balance(nnzr_p, kappa_eff);
    const double flops = 2.0 * nnz_p * scale;
    const double t_comp = flops * balance / process_bw;
    const double t_local = t_comp * (nnz_p > 0 ? local_nnz / nnz_p : 1.0);
    const double t_nonlocal = t_comp - t_local;

    // Gather: read + write of the packed send buffer.
    const double send_bytes =
        8.0 * send_elements[static_cast<std::size_t>(p)] * comm_scale;
    const double t_gather = 2.0 * send_bytes / copy_bw;

    // Communication: internode messages share the node's injection
    // bandwidth across its processes; intranode messages use the memory
    // system.
    const int my_node = p / g.processes_per_node;
    double t_comm = 0.0;
    int inter_msgs = 0;
    for (const auto& [peer, count] :
         stats.recv_from[static_cast<std::size_t>(p)]) {
      const int peer_node = peer / g.processes_per_node;
      const double bytes =
          8.0 * static_cast<double>(count) * comm_scale;
      if (peer_node == my_node) {
        t_comm += node.intranode_latency + bytes / node.intranode_bandwidth;
      } else {
        ++inter_msgs;
      }
    }
    const double inter_bytes =
        node_inter_bytes[static_cast<std::size_t>(my_node)];
    if (inter_bytes > 0.0) {
      const double avg_hops =
          node_hops_weighted[static_cast<std::size_t>(my_node)] / inter_bytes;
      const double node_bw =
          netmodel::effective_bandwidth(spec_.network, avg_hops);
      t_comm += inter_msgs * spec_.network.latency_seconds +
                inter_bytes / node_bw;
    }

    double t_total = 0.0;
    switch (params.variant) {
      case KernelVariant::kVectorNoOverlap:
        t_total = t_gather + t_comm + t_comp;
        break;
      case KernelVariant::kVectorNaiveOverlap:
        // Deferred progress: the "overlapped" communication in fact runs
        // after the local kernel, inside Waitall.
        t_total = t_gather + t_local + t_comm + t_nonlocal;
        break;
      case KernelVariant::kTaskMode:
        t_total = t_gather + std::max(t_comm, t_local) + t_nonlocal;
        break;
    }
    worst_time = std::max(worst_time, t_total);
    worst_comm = std::max(worst_comm, t_comm);
    worst_comp = std::max(worst_comp, t_comp);
    worst_gather = std::max(worst_gather, t_gather);
  }

  NodePrediction prediction;
  prediction.nodes = nodes;
  prediction.processes = processes;
  prediction.threads_per_process = g.threads_per_process;
  prediction.time_s = worst_time;
  prediction.comm_s = worst_comm;
  prediction.comp_s = worst_comp;
  prediction.gather_s = worst_gather;
  prediction.gflops =
      worst_time > 0.0
          ? 2.0 * static_cast<double>(matrix.nnz()) * scale / worst_time / 1e9
          : 0.0;
  return prediction;
}

std::vector<NodePrediction> ClusterModel::strong_scaling(
    const sparse::CsrMatrix& matrix, std::span<const int> node_counts,
    const ScenarioParams& params) const {
  const double reference =
      node_level_flops(matrix.nnz_per_row(), params.kappa) / 1e9;
  std::vector<NodePrediction> series;
  series.reserve(node_counts.size());
  for (const int nodes : node_counts) {
    NodePrediction point = predict(matrix, nodes, params);
    point.efficiency =
        reference > 0.0 ? point.gflops / (nodes * reference) : 0.0;
    series.push_back(point);
  }
  return series;
}

int ClusterModel::half_efficiency_point(
    std::span<const NodePrediction> series) {
  int best = 0;
  for (const auto& point : series) {
    if (point.efficiency >= 0.5) best = std::max(best, point.nodes);
  }
  return best;
}

}  // namespace hspmv::cluster
