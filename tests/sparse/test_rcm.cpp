#include "sparse/rcm.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "sparse/coo.hpp"
#include "sparse/stats.hpp"
#include "util/prng.hpp"

namespace hspmv::sparse {
namespace {

bool is_permutation_vector(const std::vector<index_t>& p) {
  std::vector<index_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<index_t>(i)) return false;
  }
  return true;
}

/// Randomly symmetric-permute a matrix (scrambles any banded structure).
CsrMatrix scramble(const CsrMatrix& a, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.bounded(i)]);
  }
  return a.permute_symmetric(perm);
}

TEST(Rcm, PermutationIsValid) {
  const CsrMatrix a = matgen::poisson5_2d(8, 8);
  const auto p = rcm_permutation(a);
  EXPECT_TRUE(is_permutation_vector(p));
}

TEST(Rcm, RecoversBandOfScrambledTridiagonal) {
  const CsrMatrix band = matgen::laplacian1d(100);
  const CsrMatrix scrambled = scramble(band, 5);
  const index_t scrambled_bw = compute_stats(scrambled).bandwidth;
  ASSERT_GT(scrambled_bw, 10);  // scrambling destroyed the band
  const CsrMatrix restored = rcm_reorder(scrambled);
  // RCM on a path graph recovers bandwidth 1 exactly.
  EXPECT_EQ(compute_stats(restored).bandwidth, 1);
}

TEST(Rcm, ReducesBandwidthOfScrambledGrid) {
  const CsrMatrix grid = matgen::poisson5_2d(12, 12);
  const CsrMatrix scrambled = scramble(grid, 7);
  const index_t before = compute_stats(scrambled).bandwidth;
  const index_t after = compute_stats(rcm_reorder(scrambled)).bandwidth;
  EXPECT_LT(after, before / 2);
  // For a 12x12 5-point grid the optimal bandwidth is 12; RCM should be
  // close.
  EXPECT_LE(after, 20);
}

TEST(Rcm, PreservesSpectrumProxy) {
  // Symmetric permutation preserves the multiset of values and the
  // diagonal multiset.
  const CsrMatrix a = matgen::poisson5_2d(6, 6);
  const CsrMatrix r = rcm_reorder(a);
  ASSERT_EQ(r.nnz(), a.nnz());
  std::vector<value_t> va(a.val().begin(), a.val().end());
  std::vector<value_t> vr(r.val().begin(), r.val().end());
  std::sort(va.begin(), va.end());
  std::sort(vr.begin(), vr.end());
  EXPECT_EQ(va, vr);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint paths.
  CooBuilder b(6, 6);
  for (index_t i = 0; i < 6; ++i) b.add(i, i, 2.0);
  b.add_symmetric(0, 1, -1.0);
  b.add_symmetric(1, 2, -1.0);
  b.add_symmetric(3, 4, -1.0);
  b.add_symmetric(4, 5, -1.0);
  const CsrMatrix a(6, 6, b.finish());
  const auto p = rcm_permutation(a);
  EXPECT_TRUE(is_permutation_vector(p));
  EXPECT_EQ(compute_stats(a.permute_symmetric(p)).bandwidth, 1);
}

TEST(Rcm, HandlesIsolatedVertices) {
  CooBuilder b(4, 4);
  b.add(0, 0, 1.0);  // all vertices isolated (diagonal only)
  b.add(3, 3, 1.0);
  const CsrMatrix a(4, 4, b.finish());
  const auto p = rcm_permutation(a);
  EXPECT_TRUE(is_permutation_vector(p));
}

TEST(Rcm, WorksOnNonsymmetricPatternViaSymmetrization) {
  CooBuilder b(4, 4);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, 1.0);
  b.add(0, 3, 1.0);  // only one direction stored
  const CsrMatrix a(4, 4, b.finish());
  const auto p = rcm_permutation(a);
  EXPECT_TRUE(is_permutation_vector(p));
}

TEST(Rcm, RejectsRectangular) {
  CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  const CsrMatrix a(2, 3, b.finish());
  EXPECT_THROW((void)rcm_permutation(a), std::invalid_argument);
}

TEST(Rcm, PseudoPeripheralOnPathIsEndpoint) {
  const CsrMatrix path = matgen::laplacian1d(50);
  const index_t v = pseudo_peripheral_vertex(path, 25);
  EXPECT_TRUE(v == 0 || v == 49) << "got " << v;
}

TEST(Rcm, IdempotentBandwidth) {
  // Applying RCM twice should not increase bandwidth.
  const CsrMatrix a = scramble(matgen::poisson5_2d(10, 10), 3);
  const CsrMatrix once = rcm_reorder(a);
  const CsrMatrix twice = rcm_reorder(once);
  EXPECT_LE(compute_stats(twice).bandwidth,
            compute_stats(once).bandwidth + 2);
}

}  // namespace
}  // namespace hspmv::sparse
