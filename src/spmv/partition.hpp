// Row partitioning of a global matrix across processes.
//
// The paper distributes nonzeros (or alternatively rows) evenly across
// MPI processes (Sect. 3.1, footnote 2: "We use a balanced distribution
// of nonzeros across the MPI processes here"). Both strategies are
// provided; the ablation EXP-A2 compares them.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::spmv {

enum class PartitionStrategy {
  kBalancedRows,      ///< equal row counts
  kBalancedNonzeros,  ///< equal nonzero counts (the paper's choice)
};

/// Contiguous row boundaries for `parts` partitions: parts+1 entries,
/// front() == 0, back() == a.rows(), nondecreasing.
std::vector<sparse::index_t> partition_rows(const sparse::CsrMatrix& a,
                                            int parts,
                                            PartitionStrategy strategy);

/// Per-part nonzero counts under the given boundaries.
std::vector<std::int64_t> partition_nnz(const sparse::CsrMatrix& a,
                                        std::span<const sparse::index_t>
                                            boundaries);

/// Load-imbalance factor (max/mean) of the per-part nonzero counts.
double partition_imbalance(const sparse::CsrMatrix& a,
                           std::span<const sparse::index_t> boundaries);

// ---- incremental repartitioning (elastic grow/shrink) ----

/// One contiguous row range changing owner across a repartition.
/// `source` and `dest` are ranks of the *new* communicator; source == -1
/// marks rows whose old owner is gone (dead, or never existed — the rows
/// must be re-seeded from the replicated global matrix instead of moved).
struct MigrationMove {
  int source = -1;
  int dest = -1;
  sparse::index_t row_begin = 0;
  sparse::index_t row_end = 0;

  [[nodiscard]] sparse::index_t rows() const { return row_end - row_begin; }
};

/// The old->new ownership delta of a repartition. Every rank computes the
/// identical plan from the same inputs (it is pure arithmetic over the
/// two boundary arrays), so no coordination is needed beyond agreeing on
/// the inputs. rows_moved + rows_seeded + rows_kept == global rows ==
/// rows_full_replication: the last is what the pre-elastic rebuild path
/// re-extracted from the replicated seed on *every* topology change, and
/// the quantity the incremental path must beat.
struct MigrationPlan {
  std::vector<MigrationMove> moves;   ///< rows travelling between live ranks
  std::vector<MigrationMove> seeded;  ///< rows re-extracted from the seed
  std::int64_t rows_moved = 0;
  std::int64_t rows_seeded = 0;
  std::int64_t rows_kept = 0;
  std::int64_t rows_full_replication = 0;  ///< = global rows
};

/// Compute the migration plan from `old_boundaries` (old_size+1 entries)
/// to `new_boundaries` (new_size+1 entries). `old_owner_of[s]` is the
/// new-communicator rank now hosting old rank s's thread, or -1 if that
/// rank is gone (its rows become seeded). Moves and seeded ranges are
/// emitted in ascending (dest, row_begin) order — the deterministic
/// assembly order receivers replay.
MigrationPlan plan_migration(std::span<const sparse::index_t> old_boundaries,
                             std::span<const int> old_owner_of,
                             std::span<const sparse::index_t> new_boundaries);

}  // namespace hspmv::spmv
