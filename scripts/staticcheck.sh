#!/usr/bin/env bash
# hspmv-check lane (ctest -L staticcheck / scripts/tier1.sh staticcheck).
#
# Builds the project-specific static analyzer (tools/hspmv-check, a
# token/structural frontend over compile_commands.json — docs/
# correctness-tooling.md "Static checks") and runs it over the tree
# against the committed baseline. Findings are written machine-readable
# to ANALYSIS_report.json at the repo root; unsuppressed findings fail
# the lane.
#
# Exit status: 0 = clean (or tool unavailable — the ctest staticcheck
# label still covers the invariants wherever the suite builds),
# 1 = unsuppressed findings, 2 = analyzer usage/configuration error.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
report="${repo_root}/ANALYSIS_report.json"

# The analyzer is built by the regular configure; make sure the build
# dir exists and the tool target is up to date. Any failure here means
# the toolchain can't produce the tool (cross setups, stripped-down
# containers): skip with a notice rather than fail the lane — the
# invariants themselves are still enforced by test_hspmv_check wherever
# the test suite builds.
if ! cmake -B "${build_dir}" -S "${repo_root}" >/dev/null 2>&1 ||
   ! cmake --build "${build_dir}" -j --target hspmv-check >/dev/null; then
  echo "staticcheck: hspmv-check unavailable in this toolchain; skipping"
  exit 0
fi

checker="${build_dir}/tools/hspmv-check/hspmv-check"
if [[ ! -x "${checker}" ]]; then
  echo "staticcheck: ${checker} missing after build; skipping"
  exit 0
fi

"${checker}" \
  --repo-root "${repo_root}" \
  --compile-commands "${build_dir}/compile_commands.json" \
  --baseline "${repo_root}/tools/hspmv-check-baseline.txt" \
  --json "${report}"
echo "staticcheck: report written to ${report}"
