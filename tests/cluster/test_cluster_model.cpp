// Tests of the strong-scaling model: calibration against the paper's
// node-level numbers and the qualitative laws of Sect. 4.

#include "cluster/cluster_model.hpp"

#include <gtest/gtest.h>

#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"

namespace hspmv::cluster {
namespace {

sparse::CsrMatrix hmep_like() {
  matgen::HolsteinHubbardParams p;
  p.sites = 6;
  p.electrons_up = 3;
  p.electrons_down = 3;
  p.phonon_modes = 5;
  p.max_phonons = 4;  // N = 400 * C(9,5) = 50,400
  return matgen::holstein_hubbard(p);
}

sparse::CsrMatrix samg_like() {
  return matgen::poisson7({.nx = 32, .ny = 32, .nz = 32});
}

ScenarioParams params_for(KernelVariant variant, HybridMapping mapping,
                          double kappa, double scale) {
  ScenarioParams p;
  p.variant = variant;
  p.mapping = mapping;
  p.kappa = kappa;
  p.volume_scale = scale;
  return p;
}

TEST(ClusterModel, NodeLevelMatchesPaperFig3) {
  // Westmere: ~2.2 GFlop/s per LD at kappa = 2.5, Nnzr = 15.
  const ClusterModel westmere(westmere_cluster());
  EXPECT_NEAR(westmere.node_level_flops(15.0, 2.5) / 1e9, 4.4, 0.3);
  // Magny Cours node about 25 % higher.
  const ClusterModel cray(cray_xe6());
  const double ratio = cray.node_level_flops(15.0, 2.5) /
                       westmere.node_level_flops(15.0, 2.5);
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.35);
}

TEST(ClusterModel, NaiveOverlapNeverBeatsNoOverlap) {
  // Sect. 4: "vector mode with naive overlap is always slower than the
  // variant without overlap".
  const auto matrix = hmep_like();
  const ClusterModel model(westmere_cluster());
  for (const auto mapping :
       {HybridMapping::kProcessPerCore, HybridMapping::kProcessPerDomain,
        HybridMapping::kProcessPerNode}) {
    for (const int nodes : {1, 4, 16}) {
      const auto no_overlap = model.predict(
          matrix, nodes,
          params_for(KernelVariant::kVectorNoOverlap, mapping, 2.5, 120.0));
      const auto naive = model.predict(
          matrix, nodes,
          params_for(KernelVariant::kVectorNaiveOverlap, mapping, 2.5,
                     120.0));
      EXPECT_GE(no_overlap.gflops, naive.gflops)
          << mapping_name(mapping) << " at " << nodes << " nodes";
    }
  }
}

TEST(ClusterModel, TaskModeWinsForCommBoundProblem) {
  const auto matrix = hmep_like();
  const ClusterModel model(westmere_cluster());
  for (const int nodes : {4, 16}) {
    const auto vector = model.predict(
        matrix, nodes,
        params_for(KernelVariant::kVectorNoOverlap,
                   HybridMapping::kProcessPerDomain, 2.5, 120.0));
    const auto task = model.predict(
        matrix, nodes,
        params_for(KernelVariant::kTaskMode,
                   HybridMapping::kProcessPerDomain, 2.5, 120.0));
    EXPECT_GT(task.gflops, vector.gflops * 1.05) << nodes << " nodes";
  }
}

TEST(ClusterModel, TaskModeNoAdvantageForCheapComm) {
  // Sect. 4 on sAMG: "there is no advantage of task mode over naive,
  // pure MPI without overlap". Allow a small band around parity.
  const auto matrix = samg_like();
  const ClusterModel model(westmere_cluster());
  // Full-size extrapolation: surface-scaling halo means comm volumes grow
  // much slower than compute volumes (the Fig. 6 regime).
  auto vector_params = params_for(KernelVariant::kVectorNoOverlap,
                                  HybridMapping::kProcessPerDomain, 0.7,
                                  88.0);
  vector_params.comm_volume_scale = 20.0;
  auto task_params = vector_params;
  task_params.variant = KernelVariant::kTaskMode;
  const auto vector = model.predict(matrix, 8, vector_params);
  const auto task = model.predict(matrix, 8, task_params);
  EXPECT_LT(task.gflops, vector.gflops * 1.12);
  EXPECT_GT(task.gflops, vector.gflops * 0.85);
}

TEST(ClusterModel, HybridBeatsPureMpiAtScaleForHmep) {
  // "the hybrid vector mode variants with one MPI process per LD or per
  // node already provide better scalability than pure MPI".
  const auto matrix = hmep_like();
  const ClusterModel model(westmere_cluster());
  const auto pure = model.predict(
      matrix, 16,
      params_for(KernelVariant::kVectorNoOverlap,
                 HybridMapping::kProcessPerCore, 2.5, 120.0));
  const auto per_node = model.predict(
      matrix, 16,
      params_for(KernelVariant::kVectorNoOverlap,
                 HybridMapping::kProcessPerNode, 2.5, 120.0));
  EXPECT_GT(per_node.gflops, pure.gflops);
}

TEST(ClusterModel, SamgScalesWithHighEfficiency) {
  // Fig. 6: "Parallel efficiency is above 50% for all versions up to 32
  // nodes".
  const auto matrix = samg_like();
  const ClusterModel model(westmere_cluster());
  const std::vector<int> nodes{1, 4, 16, 32};
  for (const auto variant :
       {KernelVariant::kVectorNoOverlap, KernelVariant::kTaskMode}) {
    ScenarioParams p = params_for(variant, HybridMapping::kProcessPerDomain,
                                  0.7, 88.0);
    p.comm_volume_scale = 20.0;
    const auto series = model.strong_scaling(matrix, nodes, p);
    EXPECT_EQ(ClusterModel::half_efficiency_point(series), 32)
        << variant_name(variant);
  }
}

TEST(ClusterModel, EfficiencyDecreasesWithNodes) {
  const auto matrix = hmep_like();
  const ClusterModel model(westmere_cluster());
  const std::vector<int> nodes{1, 2, 4, 8, 16};
  const auto series = model.strong_scaling(
      matrix, nodes,
      params_for(KernelVariant::kVectorNoOverlap,
                 HybridMapping::kProcessPerDomain, 2.5, 120.0));
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i].efficiency, series[i - 1].efficiency * 1.05);
  }
  // GFlop/s still grows (no slowdown region for this range).
  EXPECT_GT(series.back().gflops, series.front().gflops);
}

TEST(ClusterModel, CrayFallsBehindOnHmepAtScale) {
  // Sect. 4: "the Cray XE6 can generally not match the performance of
  // the Westmere cluster at larger node counts".
  const auto matrix = hmep_like();
  const ClusterModel westmere(westmere_cluster());
  const ClusterModel cray(cray_xe6());
  const auto p = params_for(KernelVariant::kTaskMode,
                            HybridMapping::kProcessPerDomain, 2.5, 120.0);
  const auto w32 = westmere.predict(matrix, 32, p);
  auto cray_params = p;
  cray_params.variant = KernelVariant::kVectorNoOverlap;  // best on Cray
  const auto c32 = cray.predict(matrix, 32, cray_params);
  EXPECT_GT(w32.gflops, c32.gflops);
  // While at a single node the Cray leads (node-level advantage).
  const auto w1 = westmere.predict(matrix, 1, p);
  const auto c1 = cray.predict(matrix, 1, cray_params);
  EXPECT_GT(c1.gflops, w1.gflops);
}

TEST(ClusterModel, CrayWinsOnSamg) {
  // Fig. 6: "The Cray system performed best in vector mode without
  // overlap for all cases".
  const auto matrix = samg_like();
  const ClusterModel westmere(westmere_cluster());
  const ClusterModel cray(cray_xe6());
  ScenarioParams p = params_for(KernelVariant::kVectorNoOverlap,
                                HybridMapping::kProcessPerDomain, 0.7, 88.0);
  p.comm_volume_scale = 20.0;
  EXPECT_GT(cray.predict(matrix, 16, p).gflops,
            westmere.predict(matrix, 16, p).gflops);
}

TEST(ClusterModel, PredictionFieldsConsistent) {
  const auto matrix = samg_like();
  const ClusterModel model(westmere_cluster());
  const auto p = params_for(KernelVariant::kVectorNoOverlap,
                            HybridMapping::kProcessPerDomain, 0.7, 1.0);
  const auto point = model.predict(matrix, 4, p);
  EXPECT_EQ(point.nodes, 4);
  EXPECT_EQ(point.processes, 8);  // 2 LDs per Westmere node
  EXPECT_EQ(point.threads_per_process, 6);
  EXPECT_GT(point.time_s, 0.0);
  EXPECT_GE(point.time_s + 1e-12,
            point.comm_s);  // total covers the comm phase
  EXPECT_GT(point.gflops, 0.0);
}

TEST(ClusterModel, InvalidArgsThrow) {
  const auto matrix = matgen::laplacian1d(100);
  const ClusterModel model(westmere_cluster());
  ScenarioParams p;
  EXPECT_THROW((void)model.predict(matrix, 0, p), std::invalid_argument);
  p.volume_scale = -1.0;
  EXPECT_THROW((void)model.predict(matrix, 1, p), std::invalid_argument);
  p.volume_scale = 1.0;
  // 100 rows cannot feed 12 * 32 processes.
  p.mapping = HybridMapping::kProcessPerCore;
  EXPECT_THROW((void)model.predict(matrix, 32, p), std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::cluster
