// Dense vector operations used by the iterative solvers and the
// distributed kernels. Header-only; trivially inlined.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>

#include "sparse/types.hpp"

namespace hspmv::sparse {

inline void check_same_size(std::span<const value_t> a,
                            std::span<const value_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector_ops: size mismatch");
  }
}

/// y += alpha * x
inline void axpy(value_t alpha, std::span<const value_t> x,
                 std::span<value_t> y) {
  check_same_size(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y  (the "xpay" update of CG)
inline void xpay(std::span<const value_t> x, value_t beta,
                 std::span<value_t> y) {
  check_same_size(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

inline void scale(value_t alpha, std::span<value_t> x) {
  for (auto& v : x) v *= alpha;
}

[[nodiscard]] inline value_t dot(std::span<const value_t> x,
                                 std::span<const value_t> y) {
  check_same_size(x, y);
  value_t sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

[[nodiscard]] inline value_t norm2(std::span<const value_t> x) {
  return std::sqrt(dot(x, x));
}

inline void copy(std::span<const value_t> x, std::span<value_t> y) {
  check_same_size(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

inline void fill(std::span<value_t> x, value_t v) {
  for (auto& e : x) e = v;
}

}  // namespace hspmv::sparse
