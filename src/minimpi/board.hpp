// The message-matching board: the runtime-global rendezvous structure
// where posted sends and receives meet.
//
// Matching follows MPI envelope semantics: a receive posted for
// (source, tag) matches the oldest unmatched send with the same
// (source, dest, tag) — kAnyTag receives match the oldest send from that
// source regardless of tag.
//
// Transfers are modeled as timed events: *starting* a transfer requires a
// progress actor (in kDeferred mode, a participating rank inside a library
// call; in kAsync mode, the runtime progress thread), after which its
// simulated network time elapses on the wall clock concurrently with
// everything else — like a DMA engine. The payload copy and completion
// flags land when the deadline passes and some progress actor observes it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/types.hpp"

namespace hspmv::minimpi {

class Comm;

namespace detail {
struct CollectiveSlots;
struct CommState;
}

/// Completion state shared between a Request handle and the board.
struct RequestState {
  /// Atomic so completion may be polled without the board mutex (the
  /// async progress thread completes transfers while user ranks spin on
  /// `test()`-style checks); all other fields are only written before
  /// `complete` is set and read after it is observed true.
  std::atomic<bool> complete{false};
  bool active = false;  ///< posted and not yet waited to completion
  std::size_t transferred_bytes = 0;
  int matched_tag = 0;     ///< actual tag (for kAnyTag receives)
  int matched_source = 0;  ///< actual source
  std::string error;       ///< nonempty on failure; rethrown at wait()
  /// Fault taxonomy of a failed request: when `faulted` is set, wait/test
  /// rethrow the error as a typed FaultError{fault_kind, fault_rank,
  /// fault_epoch} instead of a bare std::runtime_error.
  bool faulted = false;
  FaultKind fault_kind = FaultKind::kPermanent;
  int fault_rank = -1;
  std::uint64_t fault_epoch = 0;
  /// Times the chaos layer reported this complete request as pending
  /// (bounded by ChaosConfig::max_spurious_test_per_request).
  int chaos_test_lies = 0;
};

class Board {
 public:
  explicit Board(const RuntimeOptions& options);

  /// Post a nonblocking send/receive. `comm_id` isolates communicators.
  /// `source`/`dest` are comm-relative (used for matching); the global_*
  /// ranks identify the participating threads (used for progress claiming
  /// — a thread inside a library call progresses any transfer it
  /// participates in, across all of its communicators, like real MPI).
  std::shared_ptr<RequestState> post_send(std::uint64_t comm_id, int source,
                                          int dest, int tag, const void* data,
                                          std::size_t bytes,
                                          int global_source, int global_dest);
  std::shared_ptr<RequestState> post_recv(std::uint64_t comm_id, int source,
                                          int dest, int tag, void* data,
                                          std::size_t capacity_bytes,
                                          int global_source, int global_dest);

  /// Block until every request is complete, making progress on transfers
  /// involving global rank `rank` while waiting. Throws std::runtime_error
  /// on errored requests or runtime abort.
  void wait_all(int rank,
                const std::vector<std::shared_ptr<RequestState>>& requests);

  /// Nonblocking completion check with bounded progress: starts/finishes
  /// pending transfers involving `rank`, then reports completion.
  bool test(int rank, const std::shared_ptr<RequestState>& request);

  /// Async progress loop body; runs on the runtime's progress thread
  /// until shutdown() is called and all traffic has drained.
  void progress_thread_main();
  void shutdown();

  [[nodiscard]] RunStats stats() const;

  /// The chaos layer's decision source (never null; disabled when the
  /// runtime options carry no chaos). Collective slots borrow it for
  /// barrier jitter.
  [[nodiscard]] FaultInjector* fault() { return &fault_; }

  /// The usage validator; null unless RuntimeOptions::validate enables
  /// the checks or the blocked-state watchdog. Collective slots borrow it
  /// for deadlock detection across barriers.
  [[nodiscard]] UsageChecker* checker() { return checker_.get(); }

  /// True once an injected failure poisoned the board (every pending and
  /// future request errors out).
  [[nodiscard]] bool poisoned() const;

  /// End-of-run validation: report sends still unmatched on the board and
  /// requests never waited to completion. Called by run() after all rank
  /// threads joined cleanly.
  void finalize_validation();

  [[nodiscard]] const ValidateOptions& validate_options() const {
    return options_.validate;
  }

  /// Shutdown propagation: registered collective slots are aborted when
  /// the runtime shuts down, so a failing rank also unblocks barriers of
  /// derived communicators. Slots unregister from their destructor.
  void register_slots(detail::CollectiveSlots* slots);
  void unregister_slots(detail::CollectiveSlots* slots);

  // ---- fault-tolerant execution layer (docs/resilience.md) ----

  /// Declare world rank `rank` dead: bump the failure epoch, record it in
  /// the shared dead set (the consensus source every rank reads), revoke
  /// every registered communicator containing it, and error out all
  /// pending operations on those communicators or involving that rank
  /// with FaultKind::kPermanent. Idempotent. Called by the heartbeat
  /// detector and by Comm::simulate_rank_failure().
  void declare_dead(int rank, const std::string& reason);

  /// ULFM-style MPI_Comm_revoke: error every pending and future operation
  /// on communicator `comm_id` with FaultKind::kPermanent and release its
  /// collective barriers. Idempotent.
  void revoke_comm(std::uint64_t comm_id, int dead_rank,
                   const std::string& reason);

  /// ULFM-style MPI_Comm_shrink: board-level rendezvous of `parent`'s
  /// survivors (a normal barrier cannot work — the dead member never
  /// arrives). Every survivor gets the *same* fresh CommState over the
  /// survivors in old rank order; `new_rank` receives the caller's rank
  /// in it. Throws FaultError if the caller itself is dead or the failure
  /// epoch advances mid-shrink (a second death) — callers retry, and the
  /// new epoch keys a fresh rendezvous with a consistent survivor set.
  std::shared_ptr<detail::CommState> shrink_comm(
      const detail::CommState& parent, int global_rank, int* new_rank);

  /// Elastic grow (Comm::spawn): board-level rendezvous of *all* current
  /// members of `parent`, producing a fresh CommState over the old
  /// members (keeping their ranks) plus `extra` brand-new world ranks
  /// appended. The joiners enter the board at a bumped failure epoch
  /// (heartbeats seeded, dead set extended, validator notified via
  /// on_comm_grown) and their threads are started through the launcher
  /// registered by run(); each runs `joiner_main` on its new Comm.
  /// Throws FaultError if the caller is dead, the parent is revoked, or
  /// a member dies mid-grow (retry under the new epoch).
  std::shared_ptr<detail::CommState> grow_comm(
      const detail::CommState& parent, int global_rank, int* new_rank,
      int extra, const std::function<void(Comm&)>& joiner_main);

  /// Thread factory for grow_comm's joiners, registered by run(): must
  /// execute `body` on a fresh thread that run() joins before returning.
  using RankLauncher = std::function<void(int global_rank,
                                          std::function<void()> body)>;
  void set_rank_launcher(RankLauncher launcher);

  /// Current world size (founding ranks + every rank spawned so far).
  [[nodiscard]] int world_size() const;

  /// Liveness probe for collective waiters: records `global_rank`'s
  /// heartbeat and, when heartbeat detection is enabled, declares members
  /// silent beyond the timeout dead. Called WITHOUT the slots mutex held
  /// (lock order is board -> slots).
  void collective_heartbeat(int global_rank, const std::vector<int>& members);

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] bool is_dead(int rank) const;
  [[nodiscard]] std::vector<int> dead_ranks() const;
  [[nodiscard]] bool comm_revoked(std::uint64_t comm_id) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingOp {
    std::uint64_t comm_id;
    int source;
    int dest;
    int tag;
    int global_source;
    int global_dest;
    const void* send_data = nullptr;
    void* recv_data = nullptr;
    std::size_t bytes = 0;  // send size / recv capacity
    std::shared_ptr<RequestState> request;
    /// Eager sends: owned copy of the payload (send_data points into it).
    std::shared_ptr<std::vector<char>> eager_copy;
  };

  struct Transfer {
    const void* src;
    void* dst;
    std::size_t bytes;
    int source;
    int dest;
    int tag;
    int global_source;
    int global_dest;
    std::shared_ptr<RequestState> send_request;
    std::shared_ptr<RequestState> recv_request;
    std::shared_ptr<std::vector<char>> eager_copy;  // keeps src alive
    std::uint64_t comm_id = 0;     ///< for revocation on rank death
    Clock::time_point deadline{};  // set when the transfer starts
    /// Chaos: progress visits to skip before this transfer may start.
    int hold_rounds = 0;
  };

  /// An eager-sent payload whose transfer failed transiently after the
  /// sender already observed completion. The transport retains it for
  /// redelivery: the receiver's reposted irecv re-matches it (checked
  /// before the unmatched-send queue — it was matched first, so FIFO
  /// order is preserved), making receiver-only retry sufficient.
  struct DroppedMessage {
    std::uint64_t comm_id;
    int source;
    int dest;
    int tag;
    int global_source;
    int global_dest;
    std::size_t bytes;
    std::shared_ptr<std::vector<char>> eager_copy;
  };

  /// Rendezvous state of one shrink, keyed by (parent comm id, failure
  /// epoch at entry) — every survivor of the same failure joins the same
  /// slot; a second death aborts the slot and the retry re-keys.
  struct ShrinkSlot {
    int expected = 0;
    int arrived = 0;
    bool aborted = false;
    std::shared_ptr<detail::CommState> result;
  };

  /// Rendezvous state of one grow, keyed like ShrinkSlot by (parent comm
  /// id, failure epoch at entry). All current members of the parent must
  /// arrive with the same `extra`; a death mid-rendezvous aborts the slot
  /// (the dead member would never arrive) and callers retry post-shrink.
  struct GrowSlot {
    int expected = 0;
    int arrived = 0;
    int extra = 0;
    bool aborted = false;
    std::shared_ptr<detail::CommState> result;
  };

  [[nodiscard]] bool involves(const Transfer& t, int rank) const {
    return rank < 0 || t.global_source == rank || t.global_dest == rank;
  }

  /// Move ready transfers involving `rank` into flight (stamping their
  /// completion deadlines). Lock held. Returns true if chaos held any
  /// transfer involving `rank` back — callers then poll on a short cap so
  /// the hold drains quickly.
  bool start_ready_locked(int rank, Clock::time_point now);

  /// Route a freshly matched transfer through the chaos layer (hold,
  /// reorder, injected failure) into the ready queue. Lock held.
  void enqueue_transfer_locked(Transfer&& transfer);

  /// Irrecoverable failure: error and complete every pending request,
  /// drop all queued/in-flight transfers (no further payload copies), and
  /// make every future post fail with `message`. Lock held.
  void poison_locked(const std::string& message);

  /// Error + complete one request unless it already completed cleanly,
  /// stamping the typed fault fields so wait/test throw FaultError.
  void fail_request_locked(const std::shared_ptr<RequestState>& request,
                           const std::string& message, FaultKind kind,
                           int fault_rank) const;

  /// declare_dead / revoke_comm bodies; lock held.
  void declare_dead_locked(int rank, const std::string& reason);
  void revoke_comm_locked(std::uint64_t comm_id, int dead_rank,
                          const std::string& reason);
  /// Drop every pending op and queued transfer matching `condemned`
  /// (a predicate over comm id and the two global ranks), failing their
  /// requests permanently. Lock held.
  template <typename Predicate>
  void drop_matching_locked(const Predicate& condemned,
                            const std::string& message, int fault_rank);
  /// Heartbeat bookkeeping + silent-peer detection over `suspects`
  /// (empty: no detection, just beat). Lock held.
  void beat_locked(int rank);
  void check_heartbeats_locked(const std::vector<int>& suspects);

  /// Throw the request's recorded error as FaultError (faulted) or
  /// std::runtime_error.
  [[noreturn]] static void throw_request_error(const RequestState& request);

  /// Complete in-flight transfers involving `rank` whose deadline passed:
  /// copy payloads, flip completion flags, collect hook records. Lock
  /// held. Returns true if anything completed.
  bool complete_due_locked(int rank, Clock::time_point now,
                           std::vector<TransferRecord>& records);

  /// Earliest deadline among in-flight transfers involving `rank`;
  /// Clock::time_point::max() when none.
  [[nodiscard]] Clock::time_point next_deadline_locked(int rank) const;

  void fire_hooks(const std::vector<TransferRecord>& records);

  bool match_locked(PendingOp& send, PendingOp& recv);

  /// World ranks of the still-unmatched peers of `requests` (the ranks
  /// that must act before the corresponding transfer can even start).
  /// Lock held.
  [[nodiscard]] std::vector<int> unmatched_peers_locked(
      const std::vector<std::shared_ptr<RequestState>>& requests) const;

  RuntimeOptions options_;
  FaultInjector fault_;
  std::unique_ptr<UsageChecker> checker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingOp> unmatched_sends_;
  std::deque<PendingOp> unmatched_recvs_;
  std::deque<Transfer> ready_;      // matched, not yet started
  std::deque<Transfer> in_flight_;  // started, waiting for the deadline
  bool shutdown_ = false;
  std::string poison_error_;  ///< nonempty after an injected failure
  std::vector<detail::CollectiveSlots*> slots_registry_;
  std::uint64_t matched_messages_ = 0;
  std::uint64_t transferred_messages_ = 0;
  std::uint64_t transferred_bytes_ = 0;

  // ---- fault-tolerance state ----
  std::deque<DroppedMessage> dropped_;  ///< transient-failed eager payloads
  std::vector<char> dead_;              ///< dead_[world rank] != 0: declared dead
  std::vector<Clock::time_point> last_beat_;  ///< per-rank liveness
  std::uint64_t epoch_ = 0;             ///< bumps once per declared death
  /// Revoked communicator -> world rank of the death that revoked it.
  std::map<std::uint64_t, int> revoked_comms_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, ShrinkSlot> shrink_slots_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, GrowSlot> grow_slots_;
  RankLauncher rank_launcher_;  ///< joiner thread factory (set by run())
};

}  // namespace hspmv::minimpi
