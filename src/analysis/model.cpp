#include "analysis/model.hpp"

#include <array>
#include <unordered_set>

namespace hspmv::analysis {

namespace {

constexpr std::size_t npos = FileModel::npos;

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool is_kw(const Token& t, const char* word) {
  return t.kind == Tok::kIdent && t.keyword && t.text == word;
}

/// Pair up ()[]{} with one stack; mismatches leave npos (analysis then
/// simply sees smaller structure instead of failing).
std::vector<std::size_t> match_brackets(const std::vector<Token>& toks) {
  std::vector<std::size_t> match(toks.size(), npos);
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kPunct || t.text.size() != 1) continue;
    const char c = t.text[0];
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back(i);
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
      // Pop to the nearest matching opener; skip unbalanced strays.
      while (!stack.empty() && toks[stack.back()].text[0] != open) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        match[stack.back()] = i;
        match[i] = stack.back();
        stack.pop_back();
      }
    }
  }
  return match;
}

/// Skip a name (identifiers, ::, template argument lists) starting at
/// `pos`; returns one past the name, or `pos` if none.
std::size_t skip_name(const FileModel& m, std::size_t pos) {
  std::size_t i = pos;
  int angle = 0;
  while (i < m.toks.size()) {
    const Token& t = m.toks[i];
    if (t.kind == Tok::kIdent && !t.keyword) {
      ++i;
      continue;
    }
    if (is_punct(t, "::")) {
      ++i;
      continue;
    }
    if (is_punct(t, "<")) {
      ++angle;
      ++i;
      continue;
    }
    if (angle > 0) {
      if (is_punct(t, ">")) --angle;
      ++i;
      continue;
    }
    break;
  }
  return i;
}

/// From the token after a parameter-list ')', skip cv/ref/noexcept/
/// override/final/trailing-return/ctor-init-list. Returns the index of
/// the body '{' or npos when this is not a definition.
std::size_t skip_to_body(const FileModel& m, std::size_t pos) {
  const std::vector<Token>& toks = m.toks;
  std::size_t i = pos;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) return i;
    if (is_kw(t, "const") || is_kw(t, "override") || is_kw(t, "final") ||
        is_kw(t, "mutable") || is_kw(t, "volatile") ||
        is_punct(t, "&") || is_punct(t, "&&")) {
      ++i;
      continue;
    }
    if (is_kw(t, "noexcept")) {
      ++i;
      if (i < toks.size() && is_punct(toks[i], "(") &&
          m.match[i] != npos) {
        i = m.match[i] + 1;
      }
      continue;
    }
    if (is_punct(t, "->")) {  // trailing return type
      i = skip_name(m, i + 1);
      // allow pointer/reference decoration on the return type
      while (i < toks.size() &&
             (is_punct(toks[i], "*") || is_punct(toks[i], "&") ||
              is_kw(toks[i], "const"))) {
        ++i;
      }
      continue;
    }
    if (is_punct(t, ":")) {  // constructor initializer list
      i += 1;
      while (i < toks.size()) {
        i = skip_name(m, i);
        if (i >= toks.size()) return npos;
        if ((is_punct(toks[i], "(") || is_punct(toks[i], "{")) &&
            m.match[i] != npos) {
          i = m.match[i] + 1;
        } else {
          return npos;  // malformed for our purposes
        }
        if (i < toks.size() && is_punct(toks[i], ",")) {
          ++i;
          continue;
        }
        break;
      }
      continue;
    }
    return npos;
  }
  return npos;
}

void find_functions_and_loops(FileModel& m) {
  const std::vector<Token>& toks = m.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // ---- loops ----
    if (is_kw(t, "for") || is_kw(t, "while")) {
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
          m.match[i + 1] != npos) {
        const std::size_t close = m.match[i + 1];
        std::size_t body_begin = close + 1;
        std::size_t body_end;
        if (body_begin < toks.size() && is_punct(toks[body_begin], "{") &&
            m.match[body_begin] != npos) {
          body_end = m.match[body_begin];
          ++body_begin;
        } else {  // single statement: to the ';' at bracket depth 0
          body_end = body_begin;
          int depth = 0;
          while (body_end < toks.size()) {
            const Token& s = toks[body_end];
            if (is_punct(s, "(") || is_punct(s, "[") || is_punct(s, "{")) {
              ++depth;
            } else if (is_punct(s, ")") || is_punct(s, "]") ||
                       is_punct(s, "}")) {
              --depth;
            } else if (is_punct(s, ";") && depth == 0) {
              break;
            }
            ++body_end;
          }
        }
        m.loop_bodies.push_back(TokRange{body_begin, body_end});
      }
      continue;
    }
    if (is_kw(t, "do")) {
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "{") &&
          m.match[i + 1] != npos) {
        m.loop_bodies.push_back(TokRange{i + 2, m.match[i + 1]});
      }
      continue;
    }
    // ---- named function definitions: ident ( params ) [...] { ----
    if (t.kind == Tok::kIdent && !t.keyword && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && m.match[i + 1] != npos) {
      const std::size_t close = m.match[i + 1];
      const std::size_t brace = skip_to_body(m, close + 1);
      if (brace != npos && m.match[brace] != npos) {
        FunctionInfo f;
        f.name = t.text;
        f.is_lambda = false;
        f.head_begin = i;
        f.params = TokRange{i + 2, close};
        f.brace = brace;
        f.body = TokRange{brace + 1, m.match[brace]};
        m.functions.push_back(std::move(f));
      }
      continue;
    }
    // ---- lambdas: [caps] (params)? [...] { ----
    if (is_punct(t, "[") && m.match[i] != npos) {
      // An indexing '[' follows a value; a lambda-introducer does not.
      if (i > 0) {
        const Token& prev = toks[i - 1];
        const bool value_before =
            (prev.kind == Tok::kIdent && !prev.keyword) ||
            prev.kind == Tok::kNumber || prev.kind == Tok::kString ||
            is_punct(prev, ")") || is_punct(prev, "]");
        if (value_before) continue;
      }
      const std::size_t cap_close = m.match[i];
      std::size_t j = cap_close + 1;
      TokRange params{0, 0};
      if (j < toks.size() && is_punct(toks[j], "(") && m.match[j] != npos) {
        params = TokRange{j + 1, m.match[j]};
        j = m.match[j] + 1;
      }
      const std::size_t brace = skip_to_body(m, j);
      if (brace != npos && m.match[brace] != npos) {
        FunctionInfo f;
        f.is_lambda = true;
        f.head_begin = i;
        f.captures = TokRange{i + 1, cap_close};
        f.params = params;
        f.brace = brace;
        f.body = TokRange{brace + 1, m.match[brace]};
        m.functions.push_back(std::move(f));
      }
      continue;
    }
  }
}

void find_classes(FileModel& m) {
  const std::vector<Token>& toks = m.toks;
  static const std::unordered_set<std::string> kAccess = {
      "public", "protected", "private", "virtual"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_kw(toks[i], "class") && !is_kw(toks[i], "struct")) continue;
    // `enum class` is not a class for our purposes.
    if (i > 0 && is_kw(toks[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    // Skip attributes.
    while (j + 1 < toks.size() && is_punct(toks[j], "[") &&
           m.match[j] != npos) {
      j = m.match[j] + 1;
    }
    if (j >= toks.size() || toks[j].kind != Tok::kIdent ||
        toks[j].keyword) {
      continue;
    }
    ClassInfo c;
    c.name = toks[j].text;
    c.line = toks[j].line;
    j = skip_name(m, j);  // swallow template-id names like Foo<T>
    if (j < toks.size() && is_kw(toks[j], "final")) ++j;
    if (j < toks.size() && is_punct(toks[j], ":")) {
      // Base clause: collect base name identifiers until '{'.
      ++j;
      int angle = 0;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        const Token& b = toks[j];
        if (is_punct(b, "<")) ++angle;
        if (is_punct(b, ">") && angle > 0) --angle;
        if (angle == 0 && b.kind == Tok::kIdent && !b.keyword &&
            kAccess.count(b.text) == 0) {
          c.bases.push_back(b.text);
        }
        ++j;
      }
    }
    if (j < toks.size() && is_punct(toks[j], "{") && m.match[j] != npos) {
      c.body = TokRange{j + 1, m.match[j]};
      m.classes.push_back(std::move(c));
    }
  }
}

}  // namespace

const FunctionInfo* FileModel::enclosing_function(std::size_t i) const {
  const FunctionInfo* best = nullptr;
  for (const FunctionInfo& f : functions) {
    if (!f.body.contains(i)) continue;
    if (best == nullptr || f.body.end - f.body.begin <
                               best->body.end - best->body.begin) {
      best = &f;
    }
  }
  return best;
}

FileModel TokenFrontend::parse(const std::string& path,
                               const std::string& text) const {
  FileModel m;
  m.path = path;
  LexResult lexed = lex(text);
  m.toks = std::move(lexed.tokens);
  m.suppressions = std::move(lexed.suppressions);
  m.match = match_brackets(m.toks);
  find_functions_and_loops(m);
  find_classes(m);
  return m;
}

const Frontend& default_frontend() {
  static const TokenFrontend kFrontend;
  return kFrontend;
}

}  // namespace hspmv::analysis
