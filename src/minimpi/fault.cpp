#include "minimpi/fault.hpp"

#include <algorithm>

namespace hspmv::minimpi {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
  }
  return "?";
}

bool FaultInjector::roll(double probability) {
  if (!config_.enabled || probability <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.uniform() < probability;
}

int FaultInjector::match_hold_rounds() {
  if (config_.max_hold_rounds < 1 || !roll(config_.match_hold_probability)) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return 1 + static_cast<int>(rng_.bounded(
                 static_cast<std::uint64_t>(config_.max_hold_rounds)));
}

bool FaultInjector::reorder_delivery() {
  return roll(config_.reorder_probability);
}

std::size_t FaultInjector::pick_insert_position(std::size_t queue_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      rng_.bounded(static_cast<std::uint64_t>(queue_size) + 1));
}

std::chrono::nanoseconds FaultInjector::barrier_jitter() {
  if (config_.max_barrier_jitter_seconds <= 0.0 ||
      !roll(config_.barrier_jitter_probability)) {
    return std::chrono::nanoseconds{0};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const double seconds = rng_.uniform() * config_.max_barrier_jitter_seconds;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds));
}

bool FaultInjector::lie_about_completion() {
  return roll(config_.spurious_test_probability);
}

}  // namespace hspmv::minimpi
