// Application example 2 (the paper's second use case): conjugate-gradient
// solution of a graded-grid Poisson problem with the distributed spMVM in
// vector mode, verified against a manufactured solution.

#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "matgen/poisson.hpp"
#include "minimpi/runtime.hpp"
#include "solvers/cg.hpp"
#include "solvers/resilience.hpp"
#include "sparse/kernels.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/retry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  using sparse::value_t;

  util::CliParser cli("poisson_cg",
                      "distributed CG on a graded 3-D Poisson problem");
  cli.add_option("grid", "20", "cells per axis");
  cli.add_option("ranks", "4", "number of minimpi ranks");
  cli.add_option("tol", "1e-10", "relative residual tolerance");
  cli.add_option("inject-failure", "",
                 "kill rank R at CG iteration I (\"R:I\") and demo the "
                 "fault-tolerant driver (docs/resilience.md)");
  cli.add_option("retry-policy", "off",
                 "halo-exchange retry policy: off, on, or key=value list "
                 "(attempts, base, multiplier, max, timeout, seed)");
  cli.add_option("checkpoint-interval", "10",
                 "buddy-checkpoint cadence of the resilient driver");
  if (!cli.parse(argc, argv)) return 1;

  const int grid = static_cast<int>(cli.get_int("grid"));
  const sparse::CsrMatrix a = matgen::poisson7(
      {.nx = grid, .ny = grid, .nz = grid, .grading = 1.05,
       .coefficient_jitter = 0.2, .seed = 7});
  std::printf("Poisson system: N = %d, Nnz = %lld\n", a.rows(),
              static_cast<long long>(a.nnz()));

  // Manufactured solution x*(i) = sin-profile; b = A x*.
  std::vector<value_t> x_star(static_cast<std::size_t>(a.rows()));
  for (std::size_t i = 0; i < x_star.size(); ++i) {
    x_star[i] = std::sin(0.01 * static_cast<double>(i)) + 0.5;
  }
  std::vector<value_t> b(x_star.size());
  sparse::spmv(a, x_star, b);

  std::vector<value_t> solution(x_star.size(), 0.0);
  int iterations = 0;
  double residual = 0.0;
  std::mutex mutex;

  const std::string inject = cli.get_string("inject-failure");
  const std::string retry_spec = cli.get_string("retry-policy");
  if (!inject.empty() || retry_spec != "off") {
    // Fault-tolerant path: the resilient driver checkpoints to a buddy,
    // absorbs transient halo faults via the retry policy, and survives
    // the injected permanent death by shrink + rebuild + restore.
    solvers::ResilienceOptions resilience;
    resilience.checkpoint_interval =
        static_cast<int>(cli.get_int("checkpoint-interval"));
    resilience.engine.retry = spmv::RetryPolicy::parse(retry_spec);
    if (!inject.empty()) {
      resilience.failures.push_back(solvers::parse_failure_plan(inject));
    }
    solvers::CgOptions options;
    options.tolerance = cli.get_double("tol");
    options.max_iterations = 2000;

    solvers::RecoveryStats stats;
    bool have_survivor = false;
    minimpi::run(static_cast<int>(cli.get_int("ranks")),
                 [&](minimpi::Comm& comm) {
      auto result = solvers::resilient_cg(comm, a, b, resilience, options);
      std::lock_guard<std::mutex> lock(mutex);
      if (result.recovery.survivor && !have_survivor) {
        have_survivor = true;
        solution = std::move(result.x);
        iterations = result.cg.iterations;
        residual = result.cg.relative_residual;
        stats = result.recovery;
      }
    });

    double max_error = 0.0;
    for (std::size_t i = 0; i < solution.size(); ++i) {
      max_error = std::max(max_error, std::abs(solution[i] - x_star[i]));
    }
    std::printf(
        "CG converged in %d iterations, relative residual %.2e\n"
        "recovery: %d failure(s) survived, %d iterations lost, %.2f ms "
        "recovery time, %lld halo retries, final comm size %d\n"
        "max |x - x*| = %.2e  %s\n",
        iterations, residual, stats.failures_recovered,
        stats.iterations_lost, stats.recovery_seconds * 1e3,
        static_cast<long long>(stats.transient_retries), stats.final_size,
        max_error, max_error < 1e-6 ? "OK" : "MISMATCH");
    return max_error < 1e-6 ? 0 : 1;
  }

  minimpi::run(static_cast<int>(cli.get_int("ranks")),
               [&](minimpi::Comm& comm) {
    const auto boundaries = spmv::partition_rows(
        a, comm.size(), spmv::PartitionStrategy::kBalancedNonzeros);
    spmv::DistMatrix dist(comm, a, boundaries);
    spmv::DistVector x(dist), y(dist);
    spmv::SpmvEngine engine(dist, /*threads=*/2,
                            spmv::Variant::kVectorNoOverlap);

    solvers::Operator op;
    op.local_size = static_cast<std::size_t>(dist.owned_rows());
    op.apply = [&](std::span<const value_t> in, std::span<value_t> out) {
      std::copy(in.begin(), in.end(), x.owned().begin());
      engine.apply(x, y);
      std::copy(y.owned().begin(), y.owned().end(), out.begin());
    };
    op.dot = [&](std::span<const value_t> u, std::span<const value_t> v) {
      return comm.allreduce(sparse::dot(u, v), minimpi::ReduceOp::kSum);
    };

    // Local slices of b and the solution.
    std::vector<value_t> b_local(
        b.begin() + dist.row_begin(),
        b.begin() + dist.row_begin() + dist.owned_rows());
    std::vector<value_t> x_local(op.local_size, 0.0);

    solvers::CgOptions options;
    options.tolerance = cli.get_double("tol");
    options.max_iterations = 2000;
    const auto result = solvers::conjugate_gradient(op, b_local, x_local,
                                                    options);

    std::lock_guard<std::mutex> lock(mutex);
    for (sparse::index_t i = 0; i < dist.owned_rows(); ++i) {
      solution[static_cast<std::size_t>(dist.row_begin() + i)] =
          x_local[static_cast<std::size_t>(i)];
    }
    if (comm.rank() == 0) {
      iterations = result.iterations;
      residual = result.relative_residual;
    }
  });

  double max_error = 0.0;
  for (std::size_t i = 0; i < solution.size(); ++i) {
    max_error = std::max(max_error, std::abs(solution[i] - x_star[i]));
  }
  std::printf(
      "CG converged in %d iterations, relative residual %.2e\n"
      "max |x - x*| = %.2e  %s\n",
      iterations, residual, max_error, max_error < 1e-6 ? "OK" : "MISMATCH");
  return max_error < 1e-6 ? 0 : 1;
}
