#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace hspmv::sparse {
namespace {

// 3x3:  [1 2 0]
//       [0 3 0]
//       [4 0 5]
CsrMatrix small_matrix() {
  CooBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 1, 3.0);
  b.add(2, 0, 4.0);
  b.add(2, 2, 5.0);
  return CsrMatrix(3, 3, b.finish());
}

TEST(CooBuilder, MergesDuplicatesBySummation) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, -1.0);
  const auto triplets = b.finish();
  ASSERT_EQ(triplets.size(), 2u);
  EXPECT_DOUBLE_EQ(triplets[0].value, 3.5);
}

TEST(CooBuilder, SortsRowMajor) {
  CooBuilder b(3, 3);
  b.add(2, 1, 1.0);
  b.add(0, 2, 2.0);
  b.add(0, 0, 3.0);
  const auto t = b.finish();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].row, 0);
  EXPECT_EQ(t[0].col, 0);
  EXPECT_EQ(t[1].col, 2);
  EXPECT_EQ(t[2].row, 2);
}

TEST(CooBuilder, DropZerosRemovesCancellations) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  b.add(1, 0, 2.0);
  EXPECT_EQ(b.finish(/*drop_zeros=*/true).size(), 1u);
}

TEST(CooBuilder, OutOfRangeThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, -1, 1.0), std::out_of_range);
}

TEST(CooBuilder, SymmetricAddMirrors) {
  CooBuilder b(3, 3);
  b.add_symmetric(0, 2, 7.0);
  b.add_symmetric(1, 1, 3.0);  // diagonal added once
  const auto t = b.finish();
  ASSERT_EQ(t.size(), 3u);
  CsrMatrix m(3, 3, t);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
}

TEST(Csr, BasicProperties) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_NEAR(m.nnz_per_row(), 5.0 / 3.0, 1e-15);
}

TEST(Csr, AtReturnsStoredAndZero) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 5.0);
}

TEST(Csr, RowAccess) {
  const CsrMatrix m = small_matrix();
  const auto [cols, vals] = m.row(2);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
  EXPECT_DOUBLE_EQ(vals[0], 4.0);
  EXPECT_THROW((void)m.row(3), std::out_of_range);
}

TEST(Csr, UnsortedTripletsRejected) {
  std::vector<Triplet> t{{0, 1, 1.0}, {0, 0, 2.0}};
  EXPECT_THROW(CsrMatrix(2, 2, t), std::invalid_argument);
}

TEST(Csr, DuplicateTripletsRejected) {
  std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, 2.0}};
  EXPECT_THROW(CsrMatrix(2, 2, t), std::invalid_argument);
}

TEST(Csr, RawArrayValidation) {
  // row_ptr too short
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  // col out of range
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {5}, {1.0}), std::invalid_argument);
  // decreasing row_ptr
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 0}, {0}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, RowBlockKeepsGlobalColumns) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix block = m.row_block(1, 3);
  EXPECT_EQ(block.rows(), 2);
  EXPECT_EQ(block.cols(), 3);
  EXPECT_EQ(block.nnz(), 3);
  EXPECT_DOUBLE_EQ(block.at(0, 1), 3.0);  // row 1 of original
  EXPECT_DOUBLE_EQ(block.at(1, 0), 4.0);  // row 2
}

TEST(Csr, RowBlockEmptyRange) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix block = m.row_block(1, 1);
  EXPECT_EQ(block.rows(), 0);
  EXPECT_EQ(block.nnz(), 0);
}

TEST(Csr, TransposeRoundTrip) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix tt = m.transpose().transpose();
  EXPECT_EQ(tt.nnz(), m.nnz());
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(tt.at(i, j), m.at(i, j));
    }
  }
}

TEST(Csr, TransposeValues) {
  const CsrMatrix t = small_matrix().transpose();
  EXPECT_DOUBLE_EQ(t.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 0.0);
}

TEST(Csr, StructuralSymmetry) {
  EXPECT_FALSE(small_matrix().is_structurally_symmetric());
  CooBuilder b(2, 2);
  b.add_symmetric(0, 1, 2.0);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  EXPECT_TRUE(CsrMatrix(2, 2, b.finish()).is_structurally_symmetric());
}

TEST(Csr, PermuteSymmetricIdentity) {
  const CsrMatrix m = small_matrix();
  const std::vector<index_t> id{0, 1, 2};
  const CsrMatrix p = m.permute_symmetric(id);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(p.at(i, j), m.at(i, j));
    }
  }
}

TEST(Csr, PermuteSymmetricReversal) {
  const CsrMatrix m = small_matrix();
  const std::vector<index_t> rev{2, 1, 0};
  const CsrMatrix p = m.permute_symmetric(rev);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(p.at(2 - i, 2 - j), m.at(i, j));
    }
  }
}

TEST(Csr, PermuteRejectsNonPermutation) {
  const CsrMatrix m = small_matrix();
  const std::vector<index_t> bad{0, 0, 1};
  EXPECT_THROW((void)m.permute_symmetric(bad), std::invalid_argument);
  const std::vector<index_t> short_perm{0, 1};
  EXPECT_THROW((void)m.permute_symmetric(short_perm), std::invalid_argument);
}

TEST(Csr, StorageBytesMatchesLayout) {
  const CsrMatrix m = small_matrix();
  // 4 row_ptr entries * 8 + 5 col_idx * 4 + 5 val * 8
  EXPECT_EQ(m.storage_bytes(), 4u * 8u + 5u * 4u + 5u * 8u);
}

TEST(Csr, EmptyMatrix) {
  const CsrMatrix m(0, 0, std::vector<Triplet>{});
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.nnz_per_row(), 0.0);
  EXPECT_TRUE(m.is_structurally_symmetric());
}

}  // namespace
}  // namespace hspmv::sparse
