// Wall-clock timing utilities.
#pragma once

#include <chrono>
#include <cstdint>

namespace hspmv::util {

/// Monotonic wall-clock timer with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across start()/stop() intervals; used by the
/// distributed kernels to attribute time to phases (gather, comm, compute).
class PhaseTimer {
 public:
  void start() { timer_.reset(); }
  void stop() { total_seconds_ += timer_.seconds(); }
  void clear() { total_seconds_ = 0.0; }
  [[nodiscard]] double total_seconds() const { return total_seconds_; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace hspmv::util
