// Internal token-pattern helpers shared by the hspmv-check checks.
// Everything here operates on the AST-facade (model.hpp) only.
#pragma once

#include <initializer_list>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/model.hpp"

namespace hspmv::analysis::support {

inline bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

inline bool is_kw(const Token& t, const char* word) {
  return t.kind == Tok::kIdent && t.keyword && t.text == word;
}

inline bool is_ident(const Token& t) {
  return t.kind == Tok::kIdent && !t.keyword;
}

inline bool is_ident(const Token& t, const char* name) {
  return is_ident(t) && t.text == name;
}

/// A method call `recv.name(` / `recv->name(`: returns true and sets
/// `open` to the '(' index when toks[i] is the method-name identifier.
inline bool is_method_call(const FileModel& m, std::size_t i,
                           std::size_t& open) {
  if (i + 1 >= m.toks.size() || i == 0) return false;
  if (!is_ident(m.toks[i])) return false;
  if (!is_punct(m.toks[i + 1], "(")) return false;
  const Token& prev = m.toks[i - 1];
  if (!is_punct(prev, ".") && !is_punct(prev, "->")) return false;
  open = i + 1;
  return true;
}

/// Split the top-level comma-separated arguments of a call whose '(' is
/// at `open` (with a valid match).
inline std::vector<TokRange> call_args(const FileModel& m,
                                       std::size_t open) {
  std::vector<TokRange> args;
  const std::size_t close = m.match[open];
  if (close == FileModel::npos) return args;
  std::size_t begin = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = m.toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
    if (depth == 0 && is_punct(t, ",")) {
      args.push_back(TokRange{begin, i});
      begin = i + 1;
    }
  }
  if (begin < close) args.push_back(TokRange{begin, close});
  return args;
}

/// Does range `r` mention identifier `name`?
inline bool range_mentions(const FileModel& m, TokRange r,
                           const std::string& name) {
  for (std::size_t i = r.begin; i < r.end && i < m.toks.size(); ++i) {
    if (is_ident(m.toks[i]) && m.toks[i].text == name) return true;
  }
  return false;
}

/// First identifier in `r` that is not a type-ish name — the "base
/// variable" of an argument expression like
/// `std::span<const value_t>(buf.data() + o, n)` -> "buf".
inline std::string base_identifier(const FileModel& m, TokRange r) {
  static const std::unordered_set<std::string> kTypeish = {
      "std",     "span",   "const",   "value_t", "double",   "float",
      "int",     "size_t", "int64_t", "uint64_t","int32_t",  "uint32_t",
      "sparse",  "util",   "minimpi", "hspmv",   "team",     "spmv",
      "char",    "uint8_t","int8_t",  "vector",  "offset_t", "index_t",
      "static_cast", "reinterpret_cast"};
  for (std::size_t i = r.begin; i < r.end && i < m.toks.size(); ++i) {
    const Token& t = m.toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.keyword || kTypeish.count(t.text) != 0) continue;
    return t.text;
  }
  return "";
}

/// Token range of an `if` statement's pieces starting at the `if`
/// keyword index. Handles block and single-statement branches and
/// `else`/`else if`. Valid() is false when the shape is not parseable.
struct IfView {
  TokRange cond;
  TokRange then_branch;
  TokRange else_branch;  ///< empty when there is no else
  bool has_else = false;
  std::size_t end = 0;  ///< one past the whole statement
  bool valid = false;
};

inline std::size_t statement_end(const FileModel& m, std::size_t begin) {
  int depth = 0;
  std::size_t i = begin;
  while (i < m.toks.size()) {
    const Token& t = m.toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
      if (depth == 0) return i;  // ran out of the enclosing block
      --depth;
    }
    if (is_punct(t, ";") && depth == 0) return i + 1;
    ++i;
  }
  return i;
}

inline IfView parse_if(const FileModel& m, std::size_t if_index) {
  IfView v;
  if (!is_kw(m.toks[if_index], "if")) return v;
  std::size_t open = if_index + 1;
  // C++17 if-constexpr / init-statement forms are not used with rank
  // conditions in this repo; plain `if (` only.
  if (open >= m.toks.size() || !is_punct(m.toks[open], "(") ||
      m.match[open] == FileModel::npos) {
    return v;
  }
  const std::size_t close = m.match[open];
  v.cond = TokRange{open + 1, close};
  std::size_t then_begin = close + 1;
  std::size_t then_end;
  if (then_begin < m.toks.size() && is_punct(m.toks[then_begin], "{") &&
      m.match[then_begin] != FileModel::npos) {
    then_end = m.match[then_begin];
    v.then_branch = TokRange{then_begin + 1, then_end};
    then_end += 1;
  } else {
    then_end = statement_end(m, then_begin);
    v.then_branch = TokRange{then_begin, then_end};
  }
  v.end = then_end;
  if (then_end < m.toks.size() && is_kw(m.toks[then_end], "else")) {
    v.has_else = true;
    std::size_t else_begin = then_end + 1;
    std::size_t else_end;
    if (else_begin < m.toks.size() && is_punct(m.toks[else_begin], "{") &&
        m.match[else_begin] != FileModel::npos) {
      else_end = m.match[else_begin];
      v.else_branch = TokRange{else_begin + 1, else_end};
      else_end += 1;
    } else if (else_begin < m.toks.size() &&
               is_kw(m.toks[else_begin], "if")) {
      // else-if chain: the whole chained statement is the else branch.
      IfView nested = parse_if(m, else_begin);
      else_end = nested.valid ? nested.end : statement_end(m, else_begin);
      v.else_branch = TokRange{else_begin, else_end};
    } else {
      else_end = statement_end(m, else_begin);
      v.else_branch = TokRange{else_begin, else_end};
    }
    v.end = else_end;
  }
  v.valid = true;
  return v;
}

}  // namespace hspmv::analysis::support
