// Negative fixture for hspmv-check: write-range-claim.
//
// Analyzed by tests/analysis/test_hspmv_check.cpp; never compiled.
// Shape (A): a LocalKernel subclass with a compute entry point but no
// write_ranges()/row_boundaries() — the runtime range checker would have
// no claims for its sweeps. Shape (B): a whole-object write to a
// by-reference capture inside a team lambda — the unclaimed-write race.
#include <span>

#include "spmv/engine.hpp"
#include "team/thread_team.hpp"

namespace fixture {

class UnclaimedKernel : public hspmv::spmv::LocalKernel {
 public:
  void full(std::span<const double> x, std::span<double> y, int worker);
};

double racy_sum(hspmv::team::ThreadTeam& team,
                std::span<const double> data) {
  double total = 0.0;
  team.execute([&](int id) {
    total += data[static_cast<std::size_t>(id)];
  });
  return total;
}

}  // namespace fixture
