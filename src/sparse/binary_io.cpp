#include "sparse/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace hspmv::sparse {
namespace {

constexpr char kMagic[8] = {'H', 'S', 'P', 'M', 'V', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_array(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
T read_raw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary_io: truncated stream");
  return value;
}

template <typename T>
void read_array(std::istream& in, T* data, std::size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary_io: truncated stream");
}

}  // namespace

void write_binary(std::ostream& out, const CsrMatrix& a) {
  out.write(kMagic, sizeof(kMagic));
  write_raw(out, kVersion);
  write_raw(out, a.rows());
  write_raw(out, a.cols());
  write_raw(out, a.nnz());
  write_array(out, a.row_ptr().data(), a.row_ptr().size());
  write_array(out, a.col_idx().data(), a.col_idx().size());
  write_array(out, a.val().data(), a.val().size());
  if (!out) throw std::runtime_error("binary_io: write failed");
}

void write_binary_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("binary_io: cannot open " + path);
  write_binary(out, a);
}

CsrMatrix read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary_io: bad magic");
  }
  const auto version = read_raw<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("binary_io: unsupported version " +
                             std::to_string(version));
  }
  const auto rows = read_raw<index_t>(in);
  const auto cols = read_raw<index_t>(in);
  const auto nnz = read_raw<offset_t>(in);
  if (rows < 0 || cols < 0 || nnz < 0) {
    throw std::invalid_argument("binary_io: negative dimensions");
  }
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1);
  read_array(in, row_ptr.data(), row_ptr.size());
  util::AlignedVector<index_t> col_idx(static_cast<std::size_t>(nnz));
  read_array(in, col_idx.data(), col_idx.size());
  util::AlignedVector<value_t> val(static_cast<std::size_t>(nnz));
  read_array(in, val.data(), val.size());
  // The CsrMatrix constructor revalidates all invariants.
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(val));
}

CsrMatrix read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("binary_io: cannot open " + path);
  return read_binary(in);
}

}  // namespace hspmv::sparse
