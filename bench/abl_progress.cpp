// EXP-A1 — ablation: progress semantics, measured for real on this host.
//
// The paper's central mechanism, executed (not modeled): a distributed
// spMVM with synthetic network latency runs under
//   (a) deferred progress (standard MPI behaviour)  and
//   (b) an asynchronous progress thread (what MPI implementations could
//       do — Sect. 5's outlook),
// for the naive-overlap and task-mode variants. With deferred progress,
// naive overlap pays compute + comm serially while task mode still
// overlaps (its dedicated thread sits inside the library); with async
// progress even naive overlap overlaps.

#include <cstdint>
#include <cstdio>
#include <mutex>

#include "matgen/random_matrix.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/reorder.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hspmv;
using sparse::value_t;

struct Measurement {
  double total_ms = 0.0;
  double comm_ms = 0.0;
  std::int64_t halo_elements = 0;  ///< summed over ranks (per apply)
  std::int64_t messages = 0;
};

Measurement measure(const sparse::CsrMatrix& a, spmv::Variant variant,
                    minimpi::ProgressMode progress, double latency,
                    int ranks, int threads, int repetitions,
                    spmv::EngineOptions engine_options) {
  minimpi::RuntimeOptions options;
  options.ranks = ranks;
  options.progress = progress;
  options.latency_seconds = latency;

  Measurement result;
  std::mutex mutex;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    const auto boundaries = spmv::partition_rows(
        a, comm.size(), spmv::PartitionStrategy::kBalancedNonzeros);
    spmv::DistMatrix dist(comm, a, boundaries);
    spmv::SpmvEngine engine(dist, threads, variant, engine_options);
    auto x = engine.make_vector();
    auto y = engine.make_vector();
    util::Xoshiro256 rng(1);
    for (auto& v : x.owned()) v = rng.uniform(-1.0, 1.0);

    engine.apply(x, y);  // warm-up: halo buffers, team spin-up
    // Keep the ranks in lockstep per repetition (a barrier per spMVM, as
    // a solver's dot products would impose anyway) and take the best
    // repetition to suppress scheduling noise on oversubscribed hosts.
    double best_total = 1e30;
    double best_comm = 0.0;
    spmv::Timings volume;
    for (int r = 0; r < repetitions; ++r) {
      comm.barrier();
      util::Timer timer;
      const auto t = engine.apply(x, y);
      const double total = timer.seconds();
      if (total < best_total) {
        best_total = total;
        best_comm = t.comm_s;
      }
      volume = t;  // volume counters are plan-fixed, identical every rep
    }
    comm.barrier();
    std::lock_guard<std::mutex> lock(mutex);
    result.total_ms = std::max(result.total_ms, best_total * 1e3);
    result.comm_ms = std::max(result.comm_ms, best_comm * 1e3);
    result.halo_elements += volume.halo_elements;
    result.messages += volume.messages;
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("abl_progress",
                      "ablation: deferred vs async progress (measured)");
  cli.add_option("rows", "400000", "matrix rows");
  cli.add_option("latency-ms", "25", "synthetic per-message latency");
  cli.add_option("reps", "5", "repetitions per cell");
  cli.add_option("backend", "csr",
                 "node-level kernel backend: csr, sell (SELL-C-sigma), or "
                 "auto (per-matrix autotuner)");
  cli.add_option("tune", "cached",
                 "autotuner mode for --backend=auto: off (code-balance "
                 "model, no IO), cached (tune on miss), or force");
  cli.add_option("tuning-cache", "",
                 "tuning-cache file for --backend=auto (empty = default "
                 "path, see docs/performance.md)");
  cli.add_option("reorder", "none", "global pre-pass: none or rcm");
  if (!cli.parse(argc, argv)) return 1;

  const auto reorder = spmv::parse_reorder(cli.get_string("reorder"));
  const auto a =
      spmv::make_reordered_problem(
          matgen::random_banded(
              static_cast<sparse::index_t>(cli.get_int("rows")),
              static_cast<sparse::index_t>(cli.get_int("rows") / 10), 12, 7),
          reorder)
          .matrix;
  const double latency = cli.get_double("latency-ms") * 1e-3;
  const int reps = static_cast<int>(cli.get_int("reps"));
  spmv::EngineOptions engine_options;
  engine_options.backend = spmv::parse_backend(cli.get_string("backend"));
  engine_options.tune = spmv::parse_tune_mode(cli.get_string("tune"));
  engine_options.tuning_cache = cli.get_string("tuning-cache");

  std::printf(
      "EXP-A1 — progress-mode ablation (real execution, 2 ranks x 2 "
      "threads, %.0f ms synthetic message latency, %s kernel backend, "
      "reorder=%s)\n\n",
      latency * 1e3, spmv::backend_name(engine_options.backend),
      spmv::reorder_name(reorder));

  util::Table table({"variant", "progress", "total [ms]",
                     "time in Waitall [ms]", "halo elems/spMVM", "msgs"});
  struct Cell {
    spmv::Variant variant;
    const char* variant_name;
    minimpi::ProgressMode progress;
    const char* progress_name;
  };
  const Cell cells[] = {
      {spmv::Variant::kVectorNoOverlap, "vector w/o overlap",
       minimpi::ProgressMode::kDeferred, "deferred"},
      {spmv::Variant::kVectorNaiveOverlap, "vector naive overlap",
       minimpi::ProgressMode::kDeferred, "deferred"},
      {spmv::Variant::kVectorNaiveOverlap, "vector naive overlap",
       minimpi::ProgressMode::kAsync, "async"},
      {spmv::Variant::kTaskMode, "task mode",
       minimpi::ProgressMode::kDeferred, "deferred"},
      {spmv::Variant::kTaskMode, "task mode", minimpi::ProgressMode::kAsync,
       "async"},
  };
  for (const auto& cell : cells) {
    const auto m = measure(a, cell.variant, cell.progress, latency,
                           /*ranks=*/2, /*threads=*/2, reps, engine_options);
    table.add_row({cell.variant_name, cell.progress_name,
                   util::Table::cell(m.total_ms, 2),
                   util::Table::cell(m.comm_ms, 2),
                   util::Table::cell(m.halo_elements),
                   util::Table::cell(m.messages)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected: naive overlap improves under async progress (the latency "
      "hides behind compute); task mode overlaps in BOTH modes — its "
      "dedicated thread is always inside the library. This is the paper's "
      "point that progress threads would let plain nonblocking MPI match "
      "task mode.\n");
  return 0;
}
