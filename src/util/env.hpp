// Environment-variable helpers with typed defaults.
#pragma once

#include <cstdint>
#include <string>

namespace hspmv::util {

/// Value of `name`, or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Integer value of `name`, or `fallback` when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Double value of `name`, or `fallback` when unset or unparsable.
double env_double(const char* name, double fallback);

/// True for "1", "true", "yes", "on" (case-sensitive); false otherwise.
bool env_flag(const char* name, bool fallback);

}  // namespace hspmv::util
