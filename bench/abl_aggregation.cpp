// EXP-A3 — ablation: message aggregation across the hybrid mappings
// (Sect. 4: "we attribute this to the smaller number of messages in the
// hybrid case (message aggregation) and a generally improved load
// balancing", plus the non-negligible cost of intranode message passing
// under pure MPI).

#include <cstdio>

#include "cluster/cluster_model.hpp"
#include "common/paper_matrices.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/partition.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("abl_aggregation",
                      "ablation: message aggregation per hybrid mapping");
  cli.add_option("nodes", "8", "node count");
  if (!cli.parse(argc, argv)) return 1;
  const int nodes = static_cast<int>(cli.get_int("nodes"));

  const auto pm = bench::make_hmep(1);
  const auto node = machine::westmere_ep();
  const cluster::ClusterModel model(cluster::westmere_cluster());

  std::printf(
      "EXP-A3 — message aggregation, HMeP on %d Westmere nodes\n\n", nodes);
  util::Table table({"mapping", "processes", "internode msgs",
                     "intranode msgs", "avg internode msg [kB]",
                     "model comm [ms]", "model total [GF/s]"});

  for (const auto mapping : {cluster::HybridMapping::kProcessPerCore,
                             cluster::HybridMapping::kProcessPerDomain,
                             cluster::HybridMapping::kProcessPerNode}) {
    int processes_per_node = 0;
    switch (mapping) {
      case cluster::HybridMapping::kProcessPerCore:
        processes_per_node = node.cores_per_node();
        break;
      case cluster::HybridMapping::kProcessPerDomain:
        processes_per_node = node.numa_domains;
        break;
      case cluster::HybridMapping::kProcessPerNode:
        processes_per_node = 1;
        break;
    }
    const int processes = nodes * processes_per_node;
    const auto boundaries = spmv::partition_rows(
        pm.matrix, processes, spmv::PartitionStrategy::kBalancedNonzeros);
    const auto stats = spmv::analyze_partition(pm.matrix, boundaries);

    std::int64_t internode_msgs = 0, intranode_msgs = 0;
    double internode_bytes = 0.0;
    for (int p = 0; p < processes; ++p) {
      const int my_node = p / processes_per_node;
      for (const auto& [peer, count] :
           stats.recv_from[static_cast<std::size_t>(p)]) {
        if (peer / processes_per_node == my_node) {
          ++intranode_msgs;
        } else {
          ++internode_msgs;
          internode_bytes +=
              8.0 * static_cast<double>(count) * pm.comm_volume_scale;
        }
      }
    }

    cluster::ScenarioParams params;
    params.variant = cluster::KernelVariant::kVectorNoOverlap;
    params.mapping = mapping;
    params.kappa = pm.paper_kappa;
    params.volume_scale = pm.volume_scale;
    params.comm_volume_scale = pm.comm_volume_scale;
    const auto prediction = model.predict(pm.matrix, nodes, params);

    table.add_row(
        {cluster::mapping_name(mapping), util::Table::cell(
                                             static_cast<std::int64_t>(
                                                 processes)),
         util::Table::cell(internode_msgs),
         util::Table::cell(intranode_msgs),
         util::Table::cell(internode_msgs > 0
                               ? internode_bytes /
                                     static_cast<double>(internode_msgs) /
                                     1e3
                               : 0.0,
                           1),
         util::Table::cell(prediction.comm_s * 1e3, 2),
         util::Table::cell(prediction.gflops, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected: coarser mappings aggregate the same halo volume into far "
      "fewer, larger messages and eliminate intranode traffic — the "
      "latency and intranode terms shrink, comm time drops.\n");
  return 0;
}
