// EXP-E1 (extension) — distributed symmetric spMVM, measured.
//
// Sect. 1.3.1 sets the symmetric optimization aside because (a) it is a
// special case and (b) no efficient shared-memory symmetric kernel
// existed. Having built both (sparse/symmetric.hpp and
// spmv/symmetric_engine.hpp), this harness measures the trade on real
// executions: the matrix traffic halves, but the halo must be exchanged
// twice (x forward, y contributions backward).

#include <cstdio>
#include <mutex>

#include "common/paper_matrices.hpp"
#include "minimpi/runtime.hpp"
#include "sparse/symmetric.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/symmetric_engine.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace hspmv;
using sparse::value_t;

struct Row {
  double total_ms = 0.0;
  double comm_ms = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

template <typename MakeEngine>
Row measure(const sparse::CsrMatrix& block_source,
            const sparse::CsrMatrix& partition_source, int ranks,
            double latency, int repetitions, MakeEngine&& make_engine) {
  minimpi::RuntimeOptions options;
  options.ranks = ranks;
  options.latency_seconds = latency;
  Row row;
  std::mutex mutex;
  const auto stats = minimpi::run(options, [&](minimpi::Comm& comm) {
    const auto boundaries =
        spmv::partition_rows(partition_source, comm.size(),
                             spmv::PartitionStrategy::kBalancedNonzeros);
    spmv::DistMatrix dist(comm, block_source, boundaries);
    spmv::DistVector x(dist), y(dist);
    util::Xoshiro256 rng(1);
    for (auto& v : x.owned()) v = rng.uniform(-1.0, 1.0);
    auto engine = make_engine(dist);
    engine.apply(x, y);  // warm-up
    double best_total = 1e30, best_comm = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      comm.barrier();
      util::Timer timer;
      const auto t = engine.apply(x, y);
      if (timer.seconds() < best_total) {
        best_total = timer.seconds();
        best_comm = t.comm_s;
      }
    }
    comm.barrier();
    std::lock_guard<std::mutex> lock(mutex);
    row.total_ms = std::max(row.total_ms, best_total * 1e3);
    row.comm_ms = std::max(row.comm_ms, best_comm * 1e3);
  });
  row.bytes = stats.bytes;
  row.messages = stats.messages;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ext_symmetric_dist",
                      "extension: distributed symmetric spMVM, measured");
  cli.add_option("ranks", "2", "minimpi ranks");
  cli.add_option("latency-us", "200", "synthetic per-message latency");
  cli.add_option("reps", "5", "repetitions");
  cli.add_option("scale", "1", "paper-matrix scale level (0..3; 3 = full paper size)");
  if (!cli.parse(argc, argv)) return 1;

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const double latency = cli.get_double("latency-us") * 1e-6;
  const int reps = static_cast<int>(cli.get_int("reps"));

  std::printf(
      "EXP-E1 — distributed symmetric vs full spMVM (%d ranks, %.0f us "
      "message latency)\n\n",
      ranks, latency * 1e6);

  util::Table table({"matrix", "engine", "total [ms]", "comm [ms]",
                     "msgs/spMVM", "bytes/spMVM [kB]"});
  for (auto& pm : {bench::make_hmep(static_cast<int>(cli.get_int("scale"))),
                   bench::make_samg(static_cast<int>(cli.get_int("scale")))}) {
    const auto sym = sparse::SymmetricCsr::from_full(pm.matrix);

    const Row full = measure(
        pm.matrix, pm.matrix, ranks, latency, reps,
        [&](spmv::DistMatrix& dist) {
          return spmv::SpmvEngine(dist, 2, spmv::Variant::kTaskMode);
        });
    const Row half = measure(
        sym.upper(), pm.matrix, ranks, latency, reps,
        [&](spmv::DistMatrix& dist) {
          return spmv::SymmetricSpmvEngine(dist, 2);
        });

    const double per_apply = 1.0 / (reps + 1);  // incl. warm-up
    table.add_row({pm.name, "full CRS, task mode",
                   util::Table::cell(full.total_ms, 2),
                   util::Table::cell(full.comm_ms, 2),
                   util::Table::cell(
                       static_cast<double>(full.messages) * per_apply / ranks,
                       1),
                   util::Table::cell(static_cast<double>(full.bytes) *
                                         per_apply / ranks / 1e3,
                                     1)});
    table.add_row({pm.name, "symmetric CRS",
                   util::Table::cell(half.total_ms, 2),
                   util::Table::cell(half.comm_ms, 2),
                   util::Table::cell(
                       static_cast<double>(half.messages) * per_apply / ranks,
                       1),
                   util::Table::cell(static_cast<double>(half.bytes) *
                                         per_apply / ranks / 1e3,
                                     1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "expected: the symmetric engine sweeps ~half the matrix bytes "
      "(faster kernel) but moves ~2x the halo traffic in 2x the messages "
      "— it wins where the problem is matrix-bandwidth-bound and loses "
      "where communication dominates, which is why the paper kept full "
      "CRS for the general study.\n");
  return 0;
}
