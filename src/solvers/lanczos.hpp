// Lanczos iteration for extremal eigenvalues of a symmetric operator —
// the workhorse of the exact-diagonalization application whose spMVM the
// paper optimizes ("Iterative algorithms such as Lanczos ... are used to
// compute low-lying eigenstates of the Hamilton matrices", Sect. 1.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "solvers/operator.hpp"

namespace hspmv::solvers {

struct LanczosOptions {
  int max_iterations = 200;
  /// Convergence test on the change of the lowest Ritz value between
  /// consecutive iterations.
  double tolerance = 1e-10;
  std::uint64_t seed = 1;  ///< deterministic random start vector
  /// Re-orthogonalize each new Lanczos vector against the full basis
  /// (costly in memory but robust against ghost eigenvalues).
  bool full_reorthogonalization = false;
};

struct LanczosResult {
  /// Ritz values of the final tridiagonal matrix, ascending.
  // HSPMV-CHECK-ALLOW(first-touch): iteration-count-sized eigenvalue results; cold metadata
  std::vector<double> ritz_values;
  int iterations = 0;
  bool converged = false;
  /// Lanczos recurrence coefficients (for diagnostics / KPM reuse).
  // HSPMV-CHECK-ALLOW(first-touch): iteration-count-sized tridiagonal coefficients; cold metadata
  std::vector<double> alpha;
  // HSPMV-CHECK-ALLOW(first-touch): iteration-count-sized tridiagonal coefficients; cold metadata
  std::vector<double> beta;

  [[nodiscard]] double smallest() const { return ritz_values.front(); }
  [[nodiscard]] double largest() const { return ritz_values.back(); }
};

/// Run Lanczos on `op`. The operator must be symmetric; no check is
/// performed (the Ritz values are meaningless otherwise).
LanczosResult lanczos(const Operator& op, const LanczosOptions& options = {});

}  // namespace hspmv::solvers
