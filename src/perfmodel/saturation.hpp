// Bandwidth-saturation model for memory-bound kernels on a multicore
// locality domain.
//
// Throughput of t cores sharing one memory bus follows a contention law
//   P(t) = P1 * t / (1 + (t - 1) * gamma),
// which fits the paper's Nehalem EP spMVM ladder (0.91 / 1.50 / 1.95 /
// 2.25 GFlop/s at 1..4 cores) to better than 1 % with gamma ~ 0.206, and
// saturates at P1/gamma for large t. STREAM saturates faster (larger
// gamma). This is the curve behind Fig. 3 and behind the "spMVM saturates
// at about 4 threads per LD, leaving cores free for communication"
// observation that motivates task mode.
#pragma once

namespace hspmv::perfmodel {

class SaturationCurve {
 public:
  /// `single`: throughput of one core; `gamma` in [0, 1]: contention per
  /// additional core (0 = perfect scaling, 1 = no scaling).
  SaturationCurve(double single, double gamma);

  /// Throughput of `cores` cores (cores >= 1; non-integer allowed for
  /// interpolation).
  [[nodiscard]] double value(double cores) const;

  /// Asymptotic (bus-saturated) throughput: single / gamma.
  [[nodiscard]] double saturated() const;

  /// Smallest integer core count reaching `fraction` of the saturated
  /// throughput (caps at 64).
  [[nodiscard]] int cores_to_reach(double fraction) const;

  [[nodiscard]] double single() const { return single_; }
  [[nodiscard]] double gamma() const { return gamma_; }

  /// Fit gamma from two measured points: P(1) = single and
  /// P(cores) = value. This is how the machine models are calibrated from
  /// the paper's Fig. 3 numbers.
  static SaturationCurve fit(double single, int cores, double value);

 private:
  double single_;
  double gamma_;
};

}  // namespace hspmv::perfmodel
