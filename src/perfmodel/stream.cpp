#include "perfmodel/stream.hpp"

#include <limits>
#include <stdexcept>

#include "team/thread_team.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace hspmv::perfmodel {

double stream_nominal_bytes_per_element(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale:
      return 16.0;  // one load + one store of 8 B
    case StreamKernel::kAdd:
    case StreamKernel::kTriad:
      return 24.0;  // two loads + one store
  }
  return 0.0;
}

double stream_write_allocate_factor(StreamKernel kernel) {
  switch (kernel) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale:
      return 3.0 / 2.0;  // (1 load + 1 WA + 1 store) / (1 load + 1 store)
    case StreamKernel::kAdd:
    case StreamKernel::kTriad:
      return 4.0 / 3.0;  // (2 loads + 1 WA + 1 store) / 3
  }
  return 1.0;
}

StreamResult run_stream(StreamKernel kernel, const StreamOptions& options) {
  if (options.elements == 0 || options.repetitions < 1 ||
      options.threads < 1) {
    throw std::invalid_argument("run_stream: bad options");
  }
  const std::size_t n = options.elements;
  util::AlignedVector<double> a(n), b(n), c(n);

  team::ThreadTeam pool(options.threads);
  const double scalar = 3.0;

  // First touch in the same distribution as the kernel loops (the
  // NUMA-aware placement the paper relies on; a no-op on UMA hosts).
  pool.parallel_for(0, static_cast<std::int64_t>(n),
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        a[static_cast<std::size_t>(i)] = 1.0;
                        b[static_cast<std::size_t>(i)] = 2.0;
                        c[static_cast<std::size_t>(i)] = 0.5;
                      }
                    });

  const auto body = [&](std::int64_t lo, std::int64_t hi) {
    switch (kernel) {
      case StreamKernel::kCopy:
        for (std::int64_t i = lo; i < hi; ++i) {
          c[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
        }
        break;
      case StreamKernel::kScale:
        for (std::int64_t i = lo; i < hi; ++i) {
          b[static_cast<std::size_t>(i)] =
              scalar * c[static_cast<std::size_t>(i)];
        }
        break;
      case StreamKernel::kAdd:
        for (std::int64_t i = lo; i < hi; ++i) {
          c[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] +
                                           b[static_cast<std::size_t>(i)];
        }
        break;
      case StreamKernel::kTriad:
        for (std::int64_t i = lo; i < hi; ++i) {
          a[static_cast<std::size_t>(i)] =
              b[static_cast<std::size_t>(i)] +
              scalar * c[static_cast<std::size_t>(i)];
        }
        break;
    }
  };

  const double nominal =
      stream_nominal_bytes_per_element(kernel) * static_cast<double>(n);
  StreamResult result;
  result.array_bytes = n * sizeof(double);
  result.repetitions = options.repetitions;
  double best_seconds = std::numeric_limits<double>::infinity();
  double total_seconds = 0.0;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    util::Timer timer;
    pool.parallel_for(0, static_cast<std::int64_t>(n), body);
    const double s = timer.seconds();
    best_seconds = s < best_seconds ? s : best_seconds;
    total_seconds += s;
  }
  result.best_bytes_per_second = nominal / best_seconds;
  result.avg_bytes_per_second =
      nominal * options.repetitions / total_seconds;
  result.effective_bytes_per_second =
      result.best_bytes_per_second * stream_write_allocate_factor(kernel);
  return result;
}

}  // namespace hspmv::perfmodel
