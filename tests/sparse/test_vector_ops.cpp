#include "sparse/vector_ops.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace hspmv::sparse {
namespace {

TEST(VectorOps, Axpy) {
  std::vector<value_t> x{1.0, 2.0}, y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Xpay) {
  std::vector<value_t> x{1.0, 2.0}, y{10.0, 20.0};
  xpay(x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VectorOps, Scale) {
  std::vector<value_t> x{3.0, -4.0};
  scale(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -6.0);
  EXPECT_DOUBLE_EQ(x[1], 8.0);
}

TEST(VectorOps, DotAndNorm) {
  std::vector<value_t> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, DotOrthogonal) {
  std::vector<value_t> x{1.0, 0.0}, y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(VectorOps, CopyAndFill) {
  std::vector<value_t> x{1.0, 2.0}, y(2);
  copy(x, y);
  EXPECT_EQ(y, x);
  fill(y, 7.0);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  std::vector<value_t> x{1.0}, y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), std::invalid_argument);
  EXPECT_THROW((void)dot(x, y), std::invalid_argument);
  EXPECT_THROW(copy(x, y), std::invalid_argument);
  EXPECT_THROW(xpay(x, 1.0, y), std::invalid_argument);
}

TEST(VectorOps, EmptyVectorsOk) {
  std::vector<value_t> x, y;
  axpy(1.0, x, y);
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

}  // namespace
}  // namespace hspmv::sparse
