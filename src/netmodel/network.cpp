#include "netmodel/network.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace hspmv::netmodel {

NetworkSpec qdr_infiniband() {
  NetworkSpec spec;
  spec.name = "QDR InfiniBand fat tree";
  spec.topology = Topology::kFatTreeNonblocking;
  spec.latency_seconds = 1.8e-6;
  spec.node_bandwidth = 3.2e9;
  spec.hop_contention = 0.0;
  return spec;
}

NetworkSpec cray_gemini() {
  NetworkSpec spec;
  spec.name = "Cray Gemini 2D torus";
  spec.topology = Topology::kTorus2D;
  spec.latency_seconds = 1.4e-6;
  // "The internode bandwidth of the 2D torus network is beyond the
  // capability of QDR InfiniBand" (Sect. 1.3.2) — for nearest-neighbour
  // traffic.
  spec.node_bandwidth = 5.5e9;
  spec.hop_contention = 0.9;
  return spec;
}

int hop_distance(const NetworkSpec& spec, int node_a, int node_b,
                 int total_nodes) {
  if (node_a == node_b) return 0;
  if (spec.topology == Topology::kFatTreeNonblocking) return 1;
  if (total_nodes < 1) {
    throw std::invalid_argument("hop_distance: total_nodes must be >= 1");
  }
  // Near-square 2-D torus embedding: nodes laid out row-major on an
  // nx x ny grid with nx = ceil(sqrt(N)).
  const int nx = static_cast<int>(std::ceil(std::sqrt(total_nodes)));
  const int ny = (total_nodes + nx - 1) / nx;
  const auto coord = [&](int node) {
    return std::pair<int, int>{node % nx, node / nx};
  };
  const auto [ax, ay] = coord(node_a);
  const auto [bx, by] = coord(node_b);
  const int dx = std::abs(ax - bx);
  const int dy = std::abs(ay - by);
  const int wrap_dx = std::min(dx, nx - dx);
  const int wrap_dy = std::min(dy, ny - dy);
  return std::max(1, wrap_dx + wrap_dy);
}

double effective_bandwidth(const NetworkSpec& spec, double avg_hops) {
  if (avg_hops < 1.0) avg_hops = 1.0;
  return spec.node_bandwidth /
         (1.0 + spec.hop_contention * (avg_hops - 1.0));
}

double message_time(const NetworkSpec& spec, std::size_t bytes, int node_a,
                    int node_b, int total_nodes) {
  if (node_a == node_b) {
    throw std::invalid_argument(
        "message_time: intra-node messages are costed by the node model");
  }
  const int hops = hop_distance(spec, node_a, node_b, total_nodes);
  return spec.latency_seconds +
         static_cast<double>(bytes) /
             effective_bandwidth(spec, static_cast<double>(hops));
}

}  // namespace hspmv::netmodel
