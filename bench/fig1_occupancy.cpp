// EXP-F1 — reproduces Fig. 1: sparsity patterns of the Hamiltonian matrix
// with both basis numberings (HMEp, HMeP) and of the sAMG-like matrix,
// rendered as aggregated sub-block occupancy (ASCII spy plots + the
// log-scale occupancy histogram of the figure's legend).

#include <cstdio>

#include "common/paper_matrices.hpp"
#include "sparse/occupancy.hpp"
#include "sparse/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

void show(const hspmv::bench::PaperMatrix& pm) {
  using namespace hspmv;
  const auto stats = sparse::compute_stats(pm.matrix);
  std::printf("=== %s ===\n", pm.name.c_str());
  std::printf("N = %d   Nnz = %lld   Nnzr = %.2f   bandwidth = %d\n",
              stats.rows, static_cast<long long>(stats.nnz),
              stats.nnz_per_row_mean, stats.bandwidth);
  std::printf("(paper: N = %.0f, Nnz = %.0f)\n\n", pm.paper_rows,
              pm.paper_nnz);

  const auto grid = sparse::block_occupancy_auto(pm.matrix, 64);
  std::printf("%s\n", sparse::render_spy(grid).c_str());

  const auto histogram = sparse::occupancy_histogram(grid);
  util::Table table({"occupancy bucket", "blocks"});
  const char* labels[] = {"empty",   "<= 1e-6", "<= 1e-5", "<= 1e-4",
                          "<= 1e-3", "<= 1e-2", "<= 1e-1", "< 0.5",
                          ">= 0.5"};
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    table.add_row({labels[b], util::Table::cell(histogram[b])});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  hspmv::util::CliParser cli("fig1_occupancy",
                             "Fig. 1 — sparsity patterns (spy plots)");
  cli.add_option("scale", "1", "matrix scale level: 0 tiny, 1 default, 2 large, 3 full paper size");
  if (!cli.parse(argc, argv)) return 1;
  const int scale = static_cast<int>(cli.get_int("scale"));

  std::printf("Fig. 1 — sparsity patterns, sub-blocks color-coded by "
              "occupancy (log scale)\n\n");
  show(hspmv::bench::make_hmep_electron(scale));  // (a) HMEp
  show(hspmv::bench::make_hmep(scale));           // (b) HMeP
  show(hspmv::bench::make_samg(scale));           // (c) sAMG
  return 0;
}
