#include <gtest/gtest.h>

#include "machine/node_spec.hpp"
#include "netmodel/network.hpp"
#include "perfmodel/code_balance.hpp"

namespace hspmv {
namespace {

TEST(Machine, NehalemReproducesPaperLadder) {
  const machine::NodeSpec node = machine::nehalem_ep();
  // HMeP code balance with the measured kappa = 2.5.
  const double balance = perfmodel::crs_code_balance(15.0, 2.5);
  const auto curve = node.spmv_curve();
  EXPECT_NEAR(curve.value(1) / balance / 1e9, 0.91, 0.02);
  EXPECT_NEAR(curve.value(2) / balance / 1e9, 1.50, 0.03);
  EXPECT_NEAR(curve.value(3) / balance / 1e9, 1.95, 0.04);
  EXPECT_NEAR(curve.value(4) / balance / 1e9, 2.25, 0.02);
  // Full node (2 LDs): the paper's 4.29 GFlop/s (Fig. 3(a)).
  EXPECT_NEAR(node.spmv_bandwidth_node() / balance / 1e9, 4.29, 0.3);
}

TEST(Machine, SpmvReaches85PercentOfStream) {
  for (const auto& node : {machine::nehalem_ep(), machine::westmere_ep(),
                           machine::magny_cours()}) {
    const double fraction = node.spmv_bw_domain / node.stream_bw_domain;
    EXPECT_GT(fraction, 0.80) << node.name;
    EXPECT_LT(fraction, 0.90) << node.name;
  }
}

TEST(Machine, MagnyCoursNodeBeatsWestmereByQuarter) {
  // "its node-level performance is about 25 % higher than on Westmere
  // due to its four LDs per node" (Sect. 2).
  const auto amd = machine::magny_cours();
  const auto intel = machine::westmere_ep();
  const double ratio =
      amd.spmv_bandwidth_node() / intel.spmv_bandwidth_node();
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.35);
  // While a single LD is weaker.
  EXPECT_LT(amd.spmv_bw_domain, intel.spmv_bw_domain);
}

TEST(Machine, TopologyCounts) {
  const auto amd = machine::magny_cours();
  EXPECT_EQ(amd.numa_domains, 4);
  EXPECT_EQ(amd.cores_per_node(), 24);
  EXPECT_EQ(amd.smt_per_core, 1);
  const auto intel = machine::westmere_ep();
  EXPECT_EQ(intel.cores_per_node(), 12);
  EXPECT_EQ(intel.hardware_threads_per_node(), 24);
}

TEST(Machine, BandwidthClampsToDomain) {
  const auto node = machine::westmere_ep();
  EXPECT_DOUBLE_EQ(node.spmv_bandwidth(99), node.spmv_bandwidth(6));
  EXPECT_DOUBLE_EQ(node.spmv_bandwidth(-3), node.spmv_bandwidth(1));
}

TEST(Network, FatTreeIsDistanceIndependent) {
  const auto net = netmodel::qdr_infiniband();
  EXPECT_EQ(netmodel::hop_distance(net, 0, 1, 64), 1);
  EXPECT_EQ(netmodel::hop_distance(net, 0, 63, 64), 1);
  EXPECT_DOUBLE_EQ(netmodel::message_time(net, 1 << 20, 0, 1, 64),
                   netmodel::message_time(net, 1 << 20, 0, 63, 64));
}

TEST(Network, TorusHopsGrowWithDistance) {
  const auto net = netmodel::cray_gemini();
  // 16 nodes -> 4x4 grid. Node 0 at (0,0); node 5 at (1,1): 2 hops.
  EXPECT_EQ(netmodel::hop_distance(net, 0, 5, 16), 2);
  // Wraparound: node 3 at (3,0) is 1 hop from node 0.
  EXPECT_EQ(netmodel::hop_distance(net, 0, 3, 16), 1);
  // Far corner (2,2): 4 hops via wrap (2+2).
  EXPECT_EQ(netmodel::hop_distance(net, 0, 10, 16), 4);
}

TEST(Network, TorusContentionSlowsFarTraffic) {
  const auto net = netmodel::cray_gemini();
  const double near = netmodel::message_time(net, 1 << 20, 0, 1, 64);
  const double far = netmodel::message_time(net, 1 << 20, 0, 36, 64);
  EXPECT_GT(far, near * 1.3);
}

TEST(Network, GeminiFasterThanIbForNearestNeighbor) {
  // "The internode bandwidth of the 2D torus network is beyond the
  // capability of QDR InfiniBand."
  const double ib = netmodel::message_time(netmodel::qdr_infiniband(),
                                           1 << 20, 0, 1, 32);
  const double gemini = netmodel::message_time(netmodel::cray_gemini(),
                                               1 << 20, 0, 1, 32);
  EXPECT_LT(gemini, ib);
}

TEST(Network, LatencyDominatesSmallMessages) {
  const auto net = netmodel::qdr_infiniband();
  const double tiny = netmodel::message_time(net, 8, 0, 1, 4);
  EXPECT_NEAR(tiny, net.latency_seconds, net.latency_seconds * 0.1);
}

TEST(Network, EffectiveBandwidthMonotoneInHops) {
  const auto net = netmodel::cray_gemini();
  double previous = netmodel::effective_bandwidth(net, 1.0);
  for (double hops = 2.0; hops <= 8.0; ++hops) {
    const double bw = netmodel::effective_bandwidth(net, hops);
    EXPECT_LT(bw, previous);
    previous = bw;
  }
}

TEST(Network, IntranodeMessageRejected) {
  EXPECT_THROW((void)netmodel::message_time(netmodel::qdr_infiniband(), 100,
                                            2, 2, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace hspmv
