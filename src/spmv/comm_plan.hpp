// Halo-exchange bookkeeping for distributed spMVM.
//
// "Due to off-diagonal nonzeros, every process requires some parts of the
// RHS vector from other processes ... The resulting communication pattern
// depends only on the sparsity structure, so the necessary bookkeeping
// needs to be done only once." (Sect. 3.1)
//
// Local RHS layout after planning: [owned elements | halo elements],
// where the halo is ordered by ascending global column. Because every
// process owns a contiguous global row range, halo elements from one peer
// are contiguous — each peer pair exchanges exactly one message per
// spMVM.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::spmv {

/// A contiguous run of halo elements received from one peer.
struct RecvBlock {
  int peer = 0;
  sparse::index_t halo_offset = 0;  ///< into the halo segment
  sparse::index_t count = 0;
};

/// Elements of the owned segment to pack and send to one peer.
struct SendBlock {
  int peer = 0;
  std::vector<sparse::index_t> gather;  ///< owned-local indices
};

struct CommPlan {
  sparse::index_t local_rows = 0;
  sparse::index_t halo_count = 0;
  std::vector<RecvBlock> recv_blocks;
  std::vector<SendBlock> send_blocks;

  [[nodiscard]] std::size_t send_elements() const {
    std::size_t total = 0;
    for (const auto& b : send_blocks) total += b.gather.size();
    return total;
  }
  [[nodiscard]] std::size_t recv_elements() const {
    return static_cast<std::size_t>(halo_count);
  }
};

/// Element-balanced decomposition of a plan's send-side gather across
/// `parties` threads. The per-block gather lists are flattened into one
/// element index space and split with static_chunk, then a party's chunk
/// is mapped back to (block, element-range) pieces — so a single huge
/// send block (the skewed-peer case) still splits evenly instead of
/// serializing on whichever thread owns the block.
class GatherSchedule {
 public:
  GatherSchedule() = default;
  GatherSchedule(const CommPlan& plan, int parties);

  [[nodiscard]] int parties() const {
    return static_cast<int>(bounds_.size()) - 1;
  }
  [[nodiscard]] std::int64_t total_elements() const {
    return block_offsets_.empty() ? 0 : block_offsets_.back();
  }
  /// Flattened-element count of `party`'s share (for idle-thread checks).
  [[nodiscard]] std::int64_t elements_of(int party) const {
    return bounds_[static_cast<std::size_t>(party) + 1] -
           bounds_[static_cast<std::size_t>(party)];
  }

  /// Invoke fn(block, element_begin, element_end) for each piece of
  /// `party`'s share: gather elements [element_begin, element_end) of
  /// send block `block`'s gather list. Pieces are emitted in block order.
  template <typename Fn>
  void for_party(int party, Fn&& fn) const {
    const auto begin = bounds_[static_cast<std::size_t>(party)];
    const auto end = bounds_[static_cast<std::size_t>(party) + 1];
    if (begin >= end) return;
    // First block whose flattened range extends past `begin`.
    std::size_t b = 0;
    while (block_offsets_[b + 1] <= begin) ++b;
    for (; b + 1 < block_offsets_.size() && block_offsets_[b] < end; ++b) {
      const auto piece_begin =
          std::max(begin, block_offsets_[b]) - block_offsets_[b];
      const auto piece_end =
          std::min(end, block_offsets_[b + 1]) - block_offsets_[b];
      fn(b, piece_begin, piece_end);
    }
  }

 private:
  std::vector<std::int64_t> block_offsets_;  ///< blocks+1 prefix sums
  std::vector<std::int64_t> bounds_;         ///< parties+1 static chunks
};

/// Model-facing partition analysis: communication structure of every part
/// at once, without instantiating a runtime. Used by the cluster
/// execution-time simulator.
struct PartitionCommStats {
  std::vector<std::int64_t> local_nnz;     ///< entries hitting owned columns
  std::vector<std::int64_t> nonlocal_nnz;  ///< entries hitting the halo
  /// recv_from[p] = {(peer, element count)} — unique RHS elements part p
  /// needs from each peer.
  std::vector<std::vector<std::pair<int, std::int64_t>>> recv_from;

  [[nodiscard]] std::int64_t total_halo_elements() const {
    std::int64_t total = 0;
    for (const auto& peers : recv_from) {
      for (const auto& [peer, count] : peers) total += count;
    }
    return total;
  }
};

PartitionCommStats analyze_partition(
    const sparse::CsrMatrix& global,
    std::span<const sparse::index_t> boundaries);

/// Receive-side plan of one part plus the global ids of its halo
/// elements. The send side is only known to the *other* parts; it is
/// established by exchanging the halo id lists (DistMatrix does this with
/// an alltoallv, like a real distributed implementation).
struct LocalPlan {
  CommPlan plan;  ///< send_blocks empty until the exchange
  /// Ascending global column of each halo element; runs belonging to one
  /// owner are contiguous.
  std::vector<sparse::index_t> halo_globals;
  /// The local row block with columns rewritten to the compacted
  /// [owned | halo] numbering (cols() == local_rows + halo_count; each
  /// row's columns ascending, so the owned prefix is contiguous — the
  /// split kernels' invariant).
  sparse::CsrMatrix matrix;
};

/// Which part owns global column `col` under `boundaries`.
int owner_of(std::span<const sparse::index_t> boundaries,
             sparse::index_t col);

/// Build the receive-side plan for `part` from the row block
/// [boundaries[part], boundaries[part+1]) of the global matrix (with
/// global column indices).
LocalPlan build_local_plan(const sparse::CsrMatrix& local_block,
                           std::span<const sparse::index_t> boundaries,
                           int part);

}  // namespace hspmv::spmv
