// Elastic-capacity tier: incremental repartitioning (plan_migration) and
// the grow path of RecoverableSpmv. The contract under test is the PR's
// determinism guarantee: a topology change migrates only the ownership
// delta, yet the rebuilt distributed state is bitwise-identical to a
// world that was born at the new size — for shrink, for grow, and for
// vectors carried across by migrate_vector.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "common/seeded_fixture.hpp"
#include "matgen/random_matrix.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/resilient.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

class Elastic : public testutil::SeededTest {};

TEST_F(Elastic, PlanMigrationPartitionsEveryRowExactlyOnce) {
  const CsrMatrix a = matgen::random_banded(200, 24, 6, seed(1));
  for (int old_parts = 1; old_parts <= 5; ++old_parts) {
    for (int new_parts = 1; new_parts <= 5; ++new_parts) {
      const auto old_b = partition_rows(a, old_parts,
                                        PartitionStrategy::kBalancedNonzeros);
      const auto new_b = partition_rows(a, new_parts,
                                        PartitionStrategy::kBalancedNonzeros);
      // Identity mapping truncated/extended: old rank s lives on at new
      // rank s when s < new_parts, else it is gone.
      std::vector<int> owner(static_cast<std::size_t>(old_parts));
      for (int s = 0; s < old_parts; ++s) {
        owner[static_cast<std::size_t>(s)] = s < new_parts ? s : -1;
      }
      const MigrationPlan plan = plan_migration(old_b, owner, new_b);
      EXPECT_EQ(plan.rows_moved + plan.rows_seeded + plan.rows_kept,
                static_cast<std::int64_t>(a.rows()));
      EXPECT_EQ(plan.rows_full_replication,
                static_cast<std::int64_t>(a.rows()));
      // Same partition, all members alive: nothing travels.
      if (old_parts == new_parts) {
        EXPECT_EQ(plan.rows_moved, 0);
        EXPECT_EQ(plan.rows_seeded, 0);
        EXPECT_TRUE(plan.moves.empty());
      }
      // Rank 0's prefix never moves: both partitions start at row 0, so
      // the incremental path always beats full re-replication.
      EXPECT_GT(plan.rows_kept, 0);
      EXPECT_LT(plan.rows_moved + plan.rows_seeded,
                plan.rows_full_replication);
      // Emitted ranges are disjoint, in-bounds, and sorted per dest.
      std::int64_t moved = 0;
      for (const MigrationMove& mv : plan.moves) {
        EXPECT_GE(mv.source, 0);
        EXPECT_LT(mv.dest, new_parts);
        EXPECT_NE(mv.source, mv.dest);
        EXPECT_LT(mv.row_begin, mv.row_end);
        moved += mv.rows();
      }
      EXPECT_EQ(moved, plan.rows_moved);
    }
  }
}

TEST_F(Elastic, PlanMigrationIsDeterministic) {
  const CsrMatrix a = matgen::random_banded(150, 20, 5, seed(2));
  const auto old_b =
      partition_rows(a, 4, PartitionStrategy::kBalancedNonzeros);
  const auto new_b =
      partition_rows(a, 3, PartitionStrategy::kBalancedNonzeros);
  const std::vector<int> owner = {0, -1, 1, 2};  // rank 1 died
  const MigrationPlan p1 = plan_migration(old_b, owner, new_b);
  const MigrationPlan p2 = plan_migration(old_b, owner, new_b);
  ASSERT_EQ(p1.moves.size(), p2.moves.size());
  for (std::size_t i = 0; i < p1.moves.size(); ++i) {
    EXPECT_EQ(p1.moves[i].source, p2.moves[i].source);
    EXPECT_EQ(p1.moves[i].dest, p2.moves[i].dest);
    EXPECT_EQ(p1.moves[i].row_begin, p2.moves[i].row_begin);
    EXPECT_EQ(p1.moves[i].row_end, p2.moves[i].row_end);
  }
  EXPECT_EQ(p1.rows_seeded, p2.rows_seeded);
}

/// Scatter a global vector into this rank's owned slice.
std::vector<value_t> owned_slice(const std::vector<value_t>& global,
                                 index_t row_begin, index_t rows) {
  return std::vector<value_t>(
      global.begin() + row_begin,
      global.begin() + row_begin + rows);
}

TEST_F(Elastic, GrowRebuildMatchesCalmRunBitwise) {
  // The tentpole property in isolation: start at kRanks, grow to
  // kRanks + kExtra mid-run, and the post-grow apply must produce the
  // same bits as a world born at the final size. The joiners construct
  // via JoinerTag and receive their rows from the old owners — strictly
  // fewer rows travel than a full re-replication would touch.
  constexpr int kRanks = 3;
  constexpr int kExtra = 2;
  const int threads = 2;
  const CsrMatrix a = matgen::random_banded(180, 22, 6, seed(3));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(4));

  minimpi::RuntimeOptions calm;
  calm.ranks = kRanks + kExtra;
  const auto expected = testutil::distributed_product(
      a, x, threads, Variant::kVectorNoOverlap, calm, EngineOptions{});

  std::vector<value_t> result(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex result_mutex;
  std::atomic<std::int64_t> migrated{-1};
  std::atomic<std::int64_t> full{-1};

  const auto post_grow = [&](RecoverableSpmv& op) {
    EXPECT_EQ(op.comm().size(), kRanks + kExtra);
    DistVector xd = op.make_vector();
    DistVector yd = op.make_vector();
    xd.assign_from_global(x, op.matrix().row_begin());
    const Timings t = op.apply(xd, yd);
    // The elastic counters ride along in the Timings.
    EXPECT_GT(t.rows_migrated, 0);
    EXPECT_LT(t.rows_migrated, t.rows_full_replication);
    migrated = t.rows_migrated;
    full = t.rows_full_replication;
    std::lock_guard<std::mutex> lock(result_mutex);
    for (index_t i = 0; i < op.matrix().owned_rows(); ++i) {
      result[static_cast<std::size_t>(op.matrix().row_begin() + i)] =
          yd.owned()[static_cast<std::size_t>(i)];
    }
  };

  minimpi::run(kRanks, [&](minimpi::Comm& comm) {
    RecoverableSpmv op(comm, a, threads, Variant::kVectorNoOverlap);
    DistVector xd = op.make_vector();
    DistVector yd = op.make_vector();
    xd.assign_from_global(x, op.matrix().row_begin());
    op.apply(xd, yd);  // pre-grow apply at the original size
    op.grow_and_rebuild(kExtra, [&](minimpi::Comm& grown) {
      RecoverableSpmv joiner(RecoverableSpmv::JoinerTag{}, grown, a, threads,
                             Variant::kVectorNoOverlap);
      EXPECT_EQ(joiner.last_rebuild().old_size, kRanks);
      EXPECT_EQ(joiner.last_rebuild().new_size, kRanks + kExtra);
      post_grow(joiner);
    });
    EXPECT_EQ(op.last_rebuild().rows_seeded, 0);  // nobody died
    post_grow(op);
  });

  EXPECT_EQ(result, expected);
  EXPECT_GT(migrated.load(), 0);
  EXPECT_LT(migrated.load(), full.load());
}

TEST_F(Elastic, MigrateVectorCarriesBitsAcrossGrow) {
  // migrate_vector must move every owned value to its new owner exactly
  // (bit copies, no arithmetic), across both directions of the same
  // repartition the matrix took.
  constexpr int kRanks = 2;
  constexpr int kExtra = 2;
  const CsrMatrix a = matgen::random_banded(140, 18, 5, seed(5));
  const auto v =
      testutil::random_vector(static_cast<std::size_t>(a.rows()), seed(6));

  std::atomic<int> checked{0};
  const auto verify = [&](RecoverableSpmv& op,
                          std::span<const value_t> old_owned) {
    const auto mine = op.migrate_vector(old_owned);
    const index_t begin = op.matrix().row_begin();
    ASSERT_EQ(mine.size(),
              static_cast<std::size_t>(op.matrix().owned_rows()));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      ASSERT_EQ(mine[i], v[static_cast<std::size_t>(begin) + i]);
    }
    ++checked;
  };

  minimpi::run(kRanks, [&](minimpi::Comm& comm) {
    RecoverableSpmv op(comm, a, 2, Variant::kVectorNoOverlap);
    const auto old_mine =
        owned_slice(v, op.matrix().row_begin(), op.matrix().owned_rows());
    op.grow_and_rebuild(kExtra, [&](minimpi::Comm& grown) {
      RecoverableSpmv joiner(RecoverableSpmv::JoinerTag{}, grown, a, 2,
                             Variant::kVectorNoOverlap);
      verify(joiner, {});  // joiners contribute nothing, receive their slice
    });
    verify(op, old_mine);
  });
  EXPECT_EQ(checked.load(), kRanks + kExtra);
}

TEST_F(Elastic, ShrinkThenGrowBackMatchesCalmRunBitwise) {
  // The full elastic round trip at engine level: kill a rank, shrink,
  // grow back to the original size, and the final apply must match a
  // calm world of the original size bit for bit.
  constexpr int kRanks = 4;
  constexpr int kVictim = 2;
  const int threads = 2;
  const CsrMatrix a = matgen::random_banded(160, 20, 5, seed(7));
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), seed(8));

  minimpi::RuntimeOptions calm;
  calm.ranks = kRanks;
  const auto expected = testutil::distributed_product(
      a, x, threads, Variant::kVectorNoOverlap, calm, EngineOptions{});

  std::vector<value_t> result(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex result_mutex;

  const auto final_apply = [&](RecoverableSpmv& op) {
    EXPECT_EQ(op.comm().size(), kRanks);
    DistVector xd = op.make_vector();
    DistVector yd = op.make_vector();
    xd.assign_from_global(x, op.matrix().row_begin());
    op.apply(xd, yd);
    std::lock_guard<std::mutex> lock(result_mutex);
    for (index_t i = 0; i < op.matrix().owned_rows(); ++i) {
      result[static_cast<std::size_t>(op.matrix().row_begin() + i)] =
          yd.owned()[static_cast<std::size_t>(i)];
    }
  };

  minimpi::run(kRanks, [&](minimpi::Comm& comm) {
    RecoverableSpmv op(comm, a, threads, Variant::kVectorNoOverlap);
    try {
      DistVector xd = op.make_vector();
      DistVector yd = op.make_vector();
      xd.assign_from_global(x, op.matrix().row_begin());
      op.apply(xd, yd);
      if (comm.rank() == kVictim) comm.simulate_rank_failure();
      comm.barrier();
      ADD_FAILURE() << "no fault observed";
      return;
    } catch (const minimpi::FaultError&) {
      if (comm.rank() == kVictim) return;
    }
    op.shrink_and_rebuild();
    EXPECT_EQ(op.comm().size(), kRanks - 1);
    // The dead rank's rows were re-seeded, the rest kept or moved.
    EXPECT_GT(op.last_rebuild().rows_seeded, 0);
    op.grow_and_rebuild(1, [&](minimpi::Comm& grown) {
      RecoverableSpmv joiner(RecoverableSpmv::JoinerTag{}, grown, a, threads,
                             Variant::kVectorNoOverlap);
      final_apply(joiner);
    });
    EXPECT_EQ(op.last_rebuild().rows_seeded, 0);  // grow loses nobody
    final_apply(op);
  });

  EXPECT_EQ(result, expected);
}

TEST_F(Elastic, MigrateVectorRejectsWrongSlice) {
  minimpi::run(2, [&](minimpi::Comm& comm) {
    const CsrMatrix a = matgen::random_banded(60, 10, 3, seed(9));
    RecoverableSpmv op(comm, a, 2, Variant::kVectorNoOverlap);
    // No rebuild yet: nothing to migrate across.
    EXPECT_THROW((void)op.migrate_vector({}), std::logic_error);
  });
}

}  // namespace
}  // namespace hspmv::spmv
