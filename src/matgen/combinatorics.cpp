#include "matgen/combinatorics.hpp"

#include <bit>
#include <stdexcept>

namespace hspmv::matgen {

BinomialTable::BinomialTable(int max_n) : max_n_(max_n) {
  if (max_n < 0 || max_n > 66) {
    // C(67, 33) overflows int64; the basis sizes of interest are far
    // smaller.
    throw std::invalid_argument("BinomialTable: max_n out of [0, 66]");
  }
  table_.resize(static_cast<std::size_t>(max_n + 1) *
                static_cast<std::size_t>(max_n + 2) / 2);
  std::size_t offset = 0;
  for (int n = 0; n <= max_n; ++n) {
    table_[offset] = 1;
    for (int k = 1; k < n; ++k) {
      const std::size_t prev = offset - static_cast<std::size_t>(n);
      table_[offset + static_cast<std::size_t>(k)] =
          table_[prev + static_cast<std::size_t>(k - 1)] +
          table_[prev + static_cast<std::size_t>(k)];
    }
    if (n > 0) table_[offset + static_cast<std::size_t>(n)] = 1;
    offset += static_cast<std::size_t>(n + 1);
  }
}

std::int64_t BinomialTable::operator()(int n, int k) const {
  if (k < 0 || k > n) return 0;
  if (n > max_n_) throw std::out_of_range("BinomialTable: n > max_n");
  const std::size_t row_offset =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n + 1) / 2;
  return table_[row_offset + static_cast<std::size_t>(k)];
}

FermionBasis::FermionBasis(int orbitals, int particles)
    : orbitals_(orbitals), particles_(particles), binomial_(orbitals) {
  if (orbitals < 0 || orbitals > 62 || particles < 0 ||
      particles > orbitals) {
    throw std::invalid_argument("FermionBasis: bad (orbitals, particles)");
  }
  states_.reserve(static_cast<std::size_t>(binomial_(orbitals, particles)));
  if (particles == 0) {
    states_.push_back(0);
  } else {
    // Gosper's hack: iterate all L-bit masks with N set bits in increasing
    // numeric order.
    std::uint64_t mask = (1ULL << particles) - 1;
    const std::uint64_t limit = 1ULL << orbitals;
    while (mask < limit) {
      states_.push_back(mask);
      const std::uint64_t lowest = mask & (~mask + 1);
      const std::uint64_t ripple = mask + lowest;
      const std::uint64_t ones = mask ^ ripple;
      mask = ripple | ((ones >> 2) / lowest);
    }
  }
}

std::int64_t FermionBasis::rank(std::uint64_t mask) const {
  // Combinatorial number system: with set-bit positions p_1 < ... < p_N,
  // rank = sum_k C(p_k, k).
  std::int64_t rank = 0;
  int k = 1;
  while (mask != 0) {
    const int p = std::countr_zero(mask);
    rank += binomial_(p, k);
    ++k;
    mask &= mask - 1;
  }
  return rank;
}

BosonBasis::BosonBasis(int modes, int max_total)
    : modes_(modes), max_total_(max_total), binomial_(modes + max_total) {
  if (modes < 0 || max_total < 0) {
    throw std::invalid_argument("BosonBasis: negative parameters");
  }
  size_ = count_at_most(modes, max_total);
}

std::int64_t BosonBasis::count_at_most(int modes, int budget) const {
  if (budget < 0) return 0;
  return binomial_(budget + modes, modes);
}

void BosonBasis::state(std::int64_t index, std::vector<int>& occupation) const {
  if (index < 0 || index >= size_) {
    throw std::out_of_range("BosonBasis::state");
  }
  occupation.assign(static_cast<std::size_t>(modes_), 0);
  int budget = max_total_;
  for (int i = 0; i < modes_; ++i) {
    int value = 0;
    while (true) {
      const std::int64_t block = count_at_most(modes_ - 1 - i, budget - value);
      if (index < block) break;
      index -= block;
      ++value;
    }
    occupation[static_cast<std::size_t>(i)] = value;
    budget -= value;
  }
}

std::int64_t BosonBasis::rank(const std::vector<int>& occupation) const {
  if (occupation.size() != static_cast<std::size_t>(modes_)) {
    throw std::invalid_argument("BosonBasis::rank: wrong mode count");
  }
  std::int64_t rank = 0;
  int budget = max_total_;
  for (int i = 0; i < modes_; ++i) {
    const int n = occupation[static_cast<std::size_t>(i)];
    if (n < 0 || n > budget) {
      throw std::out_of_range("BosonBasis::rank: occupation out of range");
    }
    for (int v = 0; v < n; ++v) {
      rank += count_at_most(modes_ - 1 - i, budget - v);
    }
    budget -= n;
  }
  return rank;
}

}  // namespace hspmv::matgen
