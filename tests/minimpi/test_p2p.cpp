#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "minimpi/runtime.hpp"

namespace hspmv::minimpi {
namespace {

TEST(P2p, BlockingSendRecv) {
  run(2, [](Comm& comm) {
    std::vector<int> buffer(4);
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      comm.send(std::span<const int>(data), 1);
    } else {
      const Status s = comm.recv(std::span<int>(buffer), 0);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.count<int>(), 4u);
      EXPECT_EQ(buffer, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(P2p, NonblockingExchange) {
  run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    const std::vector<double> out(8, comm.rank() + 1.0);
    std::vector<double> in(8, 0.0);
    std::vector<Request> requests;
    requests.push_back(comm.irecv(std::span<double>(in), peer));
    requests.push_back(comm.isend(std::span<const double>(out), peer));
    comm.wait_all(requests);
    for (double v : in) EXPECT_DOUBLE_EQ(v, peer + 1.0);
  });
}

TEST(P2p, TagsRouteIndependently) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 10, b = 20;
      // Post in "wrong" order relative to the receives.
      comm.send(std::span<const int>(&b, 1), 1, /*tag=*/2);
      comm.send(std::span<const int>(&a, 1), 1, /*tag=*/1);
    } else {
      int a = 0, b = 0;
      comm.recv(std::span<int>(&a, 1), 0, /*tag=*/1);
      comm.recv(std::span<int>(&b, 1), 0, /*tag=*/2);
      EXPECT_EQ(a, 10);
      EXPECT_EQ(b, 20);
    }
  });
}

TEST(P2p, NonOvertakingSameTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(std::span<const int>(&i, 1), 1, /*tag=*/7);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(std::span<int>(&v, 1), 0, /*tag=*/7);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2p, AnyTagReportsMatchedEnvelope) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 5;
      comm.send(std::span<const int>(&v, 1), 1, /*tag=*/42);
    } else {
      int v = 0;
      const Status s = comm.recv(std::span<int>(&v, 1), 0, kAnyTag);
      EXPECT_EQ(s.tag, 42);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(P2p, ShorterReceiveCapacityErrors) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       const std::vector<int> data(8, 1);
                       comm.send(std::span<const int>(data), 1);
                     } else {
                       std::vector<int> buffer(4);
                       comm.recv(std::span<int>(buffer), 0);
                     }
                   }),
               std::runtime_error);
}

TEST(P2p, LargerReceiveCapacityReportsActualCount) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2};
      comm.send(std::span<const int>(data), 1);
    } else {
      std::vector<int> buffer(100, -1);
      const Status s = comm.recv(std::span<int>(buffer), 0);
      EXPECT_EQ(s.count<int>(), 2u);
      EXPECT_EQ(buffer[1], 2);
      EXPECT_EQ(buffer[2], -1);
    }
  });
}

TEST(P2p, SelfMessage) {
  run(1, [](Comm& comm) {
    const std::vector<int> out{9, 8};
    std::vector<int> in(2);
    Request r = comm.irecv(std::span<int>(in), 0);
    Request s = comm.isend(std::span<const int>(out), 0);
    comm.wait(r);
    comm.wait(s);
    EXPECT_EQ(in, out);
  });
}

TEST(P2p, ZeroByteMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const int>(), 1);
    } else {
      std::vector<int> buffer(1, 7);
      const Status s = comm.recv(std::span<int>(buffer), 0);
      EXPECT_EQ(s.bytes, 0u);
      EXPECT_EQ(buffer[0], 7);  // untouched
    }
  });
}

TEST(P2p, TestPollsToCompletion) {
  run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    const int out = comm.rank();
    int in = -1;
    Request recv = comm.irecv(std::span<int>(&in, 1), peer);
    Request send = comm.isend(std::span<const int>(&out, 1), peer);
    while (!comm.test(recv)) {
    }
    EXPECT_EQ(in, peer);
    comm.wait(send);
  });
}

TEST(P2p, ManyToOneGatherPattern) {
  constexpr int kRanks = 6;
  run(kRanks, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> values(kRanks, 0);
      std::vector<Request> requests;
      for (int r = 1; r < kRanks; ++r) {
        requests.push_back(comm.irecv(
            std::span<int>(&values[static_cast<std::size_t>(r)], 1), r));
      }
      comm.wait_all(requests);
      for (int r = 1; r < kRanks; ++r) {
        EXPECT_EQ(values[static_cast<std::size_t>(r)], r * r);
      }
    } else {
      const int v = comm.rank() * comm.rank();
      comm.send(std::span<const int>(&v, 1), 0);
    }
  });
}

TEST(P2p, RingShift) {
  constexpr int kRanks = 5;
  run(kRanks, [](Comm& comm) {
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    const int out = comm.rank();
    int in = -1;
    Request r = comm.irecv(std::span<int>(&in, 1), prev);
    Request s = comm.isend(std::span<const int>(&out, 1), next);
    comm.wait(r);
    comm.wait(s);
    EXPECT_EQ(in, prev);
  });
}

TEST(P2p, StatsCountMessagesAndBytes) {
  const RunStats stats = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data(100, 1.0);
      comm.send(std::span<const double>(data), 1);
    } else {
      std::vector<double> buffer(100);
      comm.recv(std::span<double>(buffer), 0);
    }
  });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 800u);
}

TEST(P2p, OnTransferHookObservesTraffic) {
  std::atomic<int> transfers{0};
  std::atomic<std::size_t> bytes{0};
  RuntimeOptions options;
  options.ranks = 3;
  options.on_transfer = [&](const TransferRecord& record) {
    transfers.fetch_add(1);
    bytes.fetch_add(record.bytes);
  };
  run(options, [](Comm& comm) {
    const int next = (comm.rank() + 1) % 3;
    const int prev = (comm.rank() + 2) % 3;
    const std::vector<int> out(10, comm.rank());
    std::vector<int> in(10);
    Request r = comm.irecv(std::span<int>(in), prev);
    Request s = comm.isend(std::span<const int>(out), next);
    comm.wait(r);
    comm.wait(s);
  });
  EXPECT_EQ(transfers.load(), 3);
  EXPECT_EQ(bytes.load(), 3u * 40u);
}

TEST(P2p, PeerOutOfRangeThrows) {
  EXPECT_THROW(run(1,
                   [](Comm& comm) {
                     const int v = 1;
                     comm.send(std::span<const int>(&v, 1), 5);
                   }),
               std::out_of_range);
}

TEST(P2p, RankExceptionPropagates) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw std::logic_error("rank 1 failed");
                     }
                     // rank 0 blocks; the abort must unblock it.
                     std::vector<int> buffer(1);
                     comm.recv(std::span<int>(buffer), 1);
                   }),
               std::logic_error);
}

TEST(P2p, InvalidOptionsThrow) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
  EXPECT_THROW(run(1, std::function<void(Comm&)>()), std::invalid_argument);
}

}  // namespace
}  // namespace hspmv::minimpi
