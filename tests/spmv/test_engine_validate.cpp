// Clean-run certification of the distributed engine under the full
// correctness-analysis suite: every engine variant x kernel backend runs
// with the minimpi UsageChecker AND the ThreadTeam write-range detector
// enabled, and must produce correct results with ZERO diagnostics. A
// false positive here would make the checkers useless as CI gates.
#include <atomic>
#include <mutex>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::value_t;

struct CheckedRun {
  std::vector<value_t> result;
  std::size_t mpi_diagnostics = 0;
  std::size_t range_diagnostics = 0;
};

/// Full distributed pipeline with both checkers armed. Vectors come from
/// engine.make_vector() so the first-touch fill phases are validated too.
CheckedRun checked_product(const CsrMatrix& a,
                           const std::vector<value_t>& x_global, int ranks,
                           int threads, Variant variant,
                           EngineOptions engine_options, int repetitions) {
  CheckedRun run_result;
  run_result.result.assign(static_cast<std::size_t>(a.rows()), 0.0);

  std::atomic<std::size_t> mpi_count{0};
  std::atomic<std::size_t> range_count{0};

  minimpi::RuntimeOptions runtime_options;
  runtime_options.ranks = ranks;
  runtime_options.validate.enabled = true;
  runtime_options.validate.on_diagnostic =
      [&](const minimpi::Diagnostic&) { ++mpi_count; };

  engine_options.range_check.enabled = true;
  engine_options.range_check.on_diagnostic =
      [&](const team::RangeDiagnostic&) { ++range_count; };

  std::mutex result_mutex;
  minimpi::run(runtime_options, [&](minimpi::Comm& comm) {
    const auto boundaries = partition_rows(
        a, comm.size(), PartitionStrategy::kBalancedNonzeros);
    DistMatrix dist(comm, a, boundaries);
    SpmvEngine engine(dist, threads, variant, engine_options);
    DistVector x = engine.make_vector();
    DistVector y = engine.make_vector();
    x.assign_from_global(x_global, dist.row_begin());
    engine.apply(x, y);
    for (int r = 1; r < repetitions; ++r) {
      std::copy(y.owned().begin(), y.owned().end(), x.owned().begin());
      engine.apply(x, y);
    }
    std::lock_guard<std::mutex> lock(result_mutex);
    for (sparse::index_t i = 0; i < dist.owned_rows(); ++i) {
      run_result.result[static_cast<std::size_t>(dist.row_begin() + i)] =
          y.owned()[static_cast<std::size_t>(i)];
    }
  });

  run_result.mpi_diagnostics = mpi_count.load();
  run_result.range_diagnostics = range_count.load();
  return run_result;
}

class ValidateSweep
    : public ::testing::TestWithParam<std::tuple<Variant, LocalBackend>> {};

TEST_P(ValidateSweep, EngineRunsCleanUnderBothCheckers) {
  const auto [variant, backend] = GetParam();
  EngineOptions options;
  options.backend = backend;
  // Small sigma window relative to the worker shares so SELL's permuted
  // write ranges actually interleave across worker boundaries.
  options.sell_chunk = 8;
  options.sell_sigma = 32;

  const CsrMatrix a = matgen::random_sparse(300, 7, 92);
  const auto x = testutil::random_vector(static_cast<std::size_t>(a.cols()),
                                         17);
  const auto expected = testutil::sequential_reference(a, x, 3);

  const CheckedRun run = checked_product(a, x, /*ranks=*/3, /*threads=*/3,
                                         variant, options, /*repetitions=*/3);
  EXPECT_LT(testutil::max_abs_diff(run.result, expected), 1e-11);
  EXPECT_EQ(run.mpi_diagnostics, 0u);
  EXPECT_EQ(run.range_diagnostics, 0u);
}

TEST_P(ValidateSweep, SerialGatherAndNoFirstTouchRunClean) {
  // The historical serial-gather / un-placed storage paths claim ranges
  // differently (thread 0 owns everything): they must validate too.
  const auto [variant, backend] = GetParam();
  EngineOptions options;
  options.backend = backend;
  options.parallel_gather = false;
  options.first_touch = false;

  const CsrMatrix a = matgen::poisson7({.nx = 6, .ny = 6, .nz = 6});
  const auto x = testutil::random_vector(static_cast<std::size_t>(a.cols()),
                                         43);
  const auto expected = testutil::sequential_reference(a, x, 2);

  const CheckedRun run = checked_product(a, x, /*ranks=*/2, /*threads=*/2,
                                         variant, options, /*repetitions=*/2);
  EXPECT_LT(testutil::max_abs_diff(run.result, expected), 1e-11);
  EXPECT_EQ(run.mpi_diagnostics, 0u);
  EXPECT_EQ(run.range_diagnostics, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsTimesBackends, ValidateSweep,
    ::testing::Combine(::testing::Values(Variant::kVectorNoOverlap,
                                         Variant::kVectorNaiveOverlap,
                                         Variant::kTaskMode),
                       ::testing::Values(LocalBackend::kCsr,
                                         LocalBackend::kSell)));

TEST(EngineValidate, SellWriteRangesPartitionTheRows) {
  // Unit-level check of the SELL override: the per-worker write ranges
  // must partition [0, rows) exactly even when sigma windows straddle
  // worker boundaries.
  const CsrMatrix a = matgen::random_sparse(257, 6, 5);
  minimpi::run(1, [&](minimpi::Comm& comm) {
    const auto boundaries =
        partition_rows(a, 1, PartitionStrategy::kBalancedNonzeros);
    DistMatrix dist(comm, a, boundaries);
    const int workers = 4;
    auto kernel = make_local_kernel(dist, LocalBackend::kSell, workers,
                                    /*sell_chunk=*/8, /*sell_sigma=*/64);
    std::vector<int> cover(static_cast<std::size_t>(a.rows()), 0);
    for (int w = 0; w < workers; ++w) {
      for (const team::Range& range : kernel->write_ranges(w)) {
        for (std::int64_t i = range.begin; i < range.end; ++i) {
          ++cover[static_cast<std::size_t>(i)];
        }
      }
    }
    for (const int hits : cover) EXPECT_EQ(hits, 1);
  });
}

TEST(EngineValidate, RangeCheckerAccessorExposesDiagnostics) {
  const CsrMatrix a = matgen::poisson7({.nx = 4, .ny = 4, .nz = 4});
  minimpi::run(1, [&](minimpi::Comm& comm) {
    const auto boundaries =
        partition_rows(a, 1, PartitionStrategy::kBalancedNonzeros);
    DistMatrix dist(comm, a, boundaries);
    EngineOptions options;
    options.range_check.enabled = true;
    SpmvEngine engine(dist, 2, Variant::kVectorNoOverlap, options);
    DistVector x = engine.make_vector();
    DistVector y = engine.make_vector();
    engine.apply(x, y);
    EXPECT_TRUE(engine.range_checker().enabled());
    EXPECT_EQ(engine.range_checker().violation_count(), 0u);
  });
}

}  // namespace
}  // namespace hspmv::spmv
