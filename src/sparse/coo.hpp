// Coordinate-format builder for assembling sparse matrices.
//
// Generators append (row, col, value) triplets in arbitrary order; finish()
// sorts them row-major, merges duplicates by summation (the usual FEM
// assembly semantics) and hands back a compact triplet list ready for CSR
// conversion.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

namespace hspmv::sparse {

struct Triplet {
  index_t row;
  index_t col;
  value_t value;
};

class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  /// Append one entry. Out-of-range indices throw std::out_of_range.
  void add(index_t row, index_t col, value_t value);

  /// Append value to (row, col) and mirror it to (col, row) when
  /// off-diagonal — convenience for symmetric operators.
  void add_symmetric(index_t row, index_t col, value_t value);

  /// Sort row-major, merge duplicates by summation, drop explicit zeros
  /// when `drop_zeros` is set. Returns the triplets by move; the builder is
  /// empty afterwards.
  std::vector<Triplet> finish(bool drop_zeros = false);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Reserve capacity for the expected number of entries.
  void reserve(std::size_t n) { entries_.reserve(n); }

 private:
  index_t rows_;
  index_t cols_;
  std::vector<Triplet> entries_;
};

}  // namespace hspmv::sparse
