#include "solvers/lanczos.hpp"

#include <cmath>
#include <stdexcept>

#include "solvers/tridiag.hpp"
#include "util/prng.hpp"

namespace hspmv::solvers {

using sparse::value_t;

LanczosResult lanczos(const Operator& op, const LanczosOptions& options) {
  if (!op.apply || !op.dot || op.local_size == 0) {
    throw std::invalid_argument("lanczos: incomplete operator");
  }
  if (options.max_iterations < 1) {
    throw std::invalid_argument("lanczos: max_iterations must be >= 1");
  }
  const std::size_t n = op.local_size;

  // HSPMV-CHECK-ALLOW(first-touch): sequential reference Lanczos; the allocating thread is the only consumer
  std::vector<value_t> v(n);       // current Lanczos vector
  // HSPMV-CHECK-ALLOW(first-touch): sequential reference Lanczos; the allocating thread is the only consumer
  std::vector<value_t> v_prev(n, 0.0);
  // HSPMV-CHECK-ALLOW(first-touch): sequential reference Lanczos; the allocating thread is the only consumer
  std::vector<value_t> w(n);
  std::vector<std::vector<value_t>> basis;  // for reorthogonalization

  // Deterministic random start, normalized with the *global* dot so every
  // rank of a distributed run produces consistent local slices only if
  // the caller seeds identically per slice; sequential use is trivial.
  util::Xoshiro256 rng(options.seed);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const value_t norm = std::sqrt(op.dot(v, v));
  if (norm == 0.0) throw std::runtime_error("lanczos: zero start vector");
  sparse::scale(1.0 / norm, v);

  LanczosResult result;
  double previous_lowest = 0.0;
  for (int it = 0; it < options.max_iterations; ++it) {
    if (options.full_reorthogonalization) basis.push_back(v);
    op.apply(v, w);
    const double a = op.dot(w, v);
    result.alpha.push_back(a);
    // w -= a v + b_prev v_prev
    for (std::size_t i = 0; i < n; ++i) {
      w[i] -= a * v[i];
      if (it > 0) w[i] -= result.beta.back() * v_prev[i];
    }
    if (options.full_reorthogonalization) {
      for (const auto& q : basis) {
        const double projection = op.dot(w, q);
        for (std::size_t i = 0; i < n; ++i) w[i] -= projection * q[i];
      }
    }
    const double b = std::sqrt(op.dot(w, w));

    result.ritz_values =
        tridiagonal_eigenvalues(result.alpha, result.beta);
    result.iterations = it + 1;
    const double lowest = result.ritz_values.front();
    if (it > 0 && std::abs(lowest - previous_lowest) <
                      options.tolerance *
                          (1.0 + std::abs(lowest))) {
      result.converged = true;
      return result;
    }
    previous_lowest = lowest;

    if (b < 1e-14) {
      // Invariant subspace found: the Ritz values are exact.
      result.converged = true;
      return result;
    }
    result.beta.push_back(b);
    v_prev = v;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / b;
  }
  return result;
}

}  // namespace hspmv::solvers
