// Spin-1/2 Heisenberg XXZ chain Hamiltonian — a second exact-
// diagonalization family from the paper's application area ("strongly
// correlated ... systems in solid state physics", Sect. 1.3.1), with a
// different sparsity signature than the Holstein-Hubbard model: Nnzr
// grows with the chain length and the off-diagonals spread by powers of
// two.
//
//   H = J sum_<ij> [ (S^x_i S^x_j + S^y_i S^y_j) + Delta S^z_i S^z_j ]
//
// in the S^z_total = (n_up - n_down)/2 sector selected by `up_spins`
// (the conserved magnetization; dimension C(L, up_spins)).
#pragma once

#include "sparse/csr.hpp"

namespace hspmv::matgen {

struct HeisenbergParams {
  int sites = 10;       ///< chain length L (<= 62)
  int up_spins = 5;     ///< magnetization sector
  double coupling = 1.0;   ///< J
  double anisotropy = 1.0; ///< Delta (1 = isotropic Heisenberg, 0 = XY)
  bool periodic = true;
};

/// Basis dimension of the sector: C(L, up_spins).
std::int64_t heisenberg_dimension(const HeisenbergParams& params);

/// Build the sector Hamiltonian in CSR form. Throws std::invalid_argument
/// for inconsistent parameters, std::length_error above `max_dimension`.
sparse::CsrMatrix heisenberg_chain(const HeisenbergParams& params,
                                   std::int64_t max_dimension = 1 << 24);

}  // namespace hspmv::matgen
