// The RCM reorder pre-pass (Sect. 1.3.1) must be transparent to the
// distributed pipeline: the engine runs on P A P^T with P x, and after
// the inverse permutation the result matches the sequential oracle on
// the ORIGINAL matrix for every variant x backend x rank count. On
// bandwidth-reducible matrices the pre-pass must also shrink the halo a
// contiguous partition needs (the reason to run it at all).

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/reference.hpp"
#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "sparse/stats.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/partition.hpp"
#include "spmv/reorder.hpp"

namespace hspmv::spmv {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;
using sparse::value_t;

CsrMatrix small_holstein() {
  matgen::HolsteinHubbardParams hp;
  hp.sites = 4;
  hp.electrons_up = 2;
  hp.electrons_down = 2;
  hp.phonon_modes = 3;
  hp.max_phonons = 3;
  return matgen::holstein_hubbard(hp);
}

std::int64_t halo_at(const CsrMatrix& a, int parts) {
  const auto boundaries =
      partition_rows(a, parts, PartitionStrategy::kBalancedNonzeros);
  return analyze_partition(a, boundaries).total_halo_elements();
}

TEST(Reorder, ParseRoundTrip) {
  EXPECT_EQ(parse_reorder("none"), Reorder::kNone);
  EXPECT_EQ(parse_reorder("rcm"), Reorder::kRcm);
  EXPECT_STREQ(reorder_name(Reorder::kNone), "none");
  EXPECT_STREQ(reorder_name(Reorder::kRcm), "rcm");
  EXPECT_EQ(parse_reorder(reorder_name(Reorder::kRcm)), Reorder::kRcm);
  EXPECT_THROW(parse_reorder("metis"), std::invalid_argument);
}

TEST(Reorder, NoneIsIdentity) {
  const CsrMatrix a = matgen::random_sparse(120, 6, 3);
  const auto problem = make_reordered_problem(a, Reorder::kNone);
  EXPECT_TRUE(problem.new_of.empty());
  EXPECT_EQ(problem.matrix.nnz(), a.nnz());
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), 11);
  const auto forward = problem.to_reordered(x);
  ASSERT_EQ(forward.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(forward[i], x[i]);
  }
  const auto back = problem.to_original(forward);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(back[i], x[i]);
  }
}

TEST(Reorder, RcmProducesValidPermutation) {
  const CsrMatrix a = small_holstein();
  const auto problem = make_reordered_problem(a, Reorder::kRcm);
  ASSERT_EQ(problem.new_of.size(), static_cast<std::size_t>(a.rows()));
  std::vector<char> seen(problem.new_of.size(), 0);
  for (const index_t target : problem.new_of) {
    ASSERT_GE(target, 0);
    ASSERT_LT(target, a.rows());
    ASSERT_EQ(seen[static_cast<std::size_t>(target)], 0);
    seen[static_cast<std::size_t>(target)] = 1;
  }
  EXPECT_EQ(problem.matrix.rows(), a.rows());
  EXPECT_EQ(problem.matrix.nnz(), a.nnz());
}

TEST(Reorder, PermutationRoundTripIsBitwise) {
  const CsrMatrix a = small_holstein();
  const auto problem = make_reordered_problem(a, Reorder::kRcm);
  const auto x =
      testutil::random_vector(static_cast<std::size_t>(a.cols()), 23);
  const auto back = problem.to_original(problem.to_reordered(x));
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(back[i], x[i]) << "element " << i;  // permutation moves, never
                                                  // arithmetic: exact
  }
}

TEST(Reorder, RcmDoesNotIncreaseBandwidth) {
  // RCM is a heuristic — on a matrix that is already near-optimally
  // banded it can lose a little, so the non-increase property is asserted
  // on the structures it targets: the Holstein Hamiltonian (the paper's
  // use case), a 3D Poisson stencil, and a scattered random pattern.
  for (const CsrMatrix& a :
       {small_holstein(), matgen::poisson7({.nx = 10, .ny = 10, .nz = 10}),
        matgen::random_sparse(500, 6, 3)}) {
    const auto problem = make_reordered_problem(a, Reorder::kRcm);
    EXPECT_LE(sparse::compute_stats(problem.matrix).bandwidth,
              sparse::compute_stats(a).bandwidth);
  }
}

TEST(Reorder, RcmShrinksHolsteinHaloAtFourParts) {
  // The acceptance property behind the pre-pass: on the Holstein-type
  // matrix at small part counts, RCM yields strictly fewer halo elements.
  const CsrMatrix a = small_holstein();
  const auto problem = make_reordered_problem(a, Reorder::kRcm);
  EXPECT_LT(halo_at(problem.matrix, 4), halo_at(a, 4));
}

// Oracle equivalence of the reordered pipeline: all variants x both
// backends, on matrices with very different structure, across ranks.
class ReorderSweep
    : public ::testing::TestWithParam<std::tuple<LocalBackend, Variant>> {};

TEST_P(ReorderSweep, HolsteinMatchesOriginalOracle) {
  const auto [backend, variant] = GetParam();
  EngineOptions options;
  options.backend = backend;
  EXPECT_LT(testutil::reordered_distributed_error(
                small_holstein(), Reorder::kRcm, 4, 2, variant, options),
            1e-10);
}

TEST_P(ReorderSweep, PoissonMatchesOriginalOracle) {
  const auto [backend, variant] = GetParam();
  EngineOptions options;
  options.backend = backend;
  const CsrMatrix a = matgen::poisson7({.nx = 8, .ny = 8, .nz = 8});
  EXPECT_LT(testutil::reordered_distributed_error(a, Reorder::kRcm, 3, 2,
                                                  variant, options),
            1e-10);
}

TEST_P(ReorderSweep, RandomMatchesOriginalOracle) {
  const auto [backend, variant] = GetParam();
  EngineOptions options;
  options.backend = backend;
  const CsrMatrix a = matgen::random_sparse(350, 7, 19);
  EXPECT_LT(testutil::reordered_distributed_error(a, Reorder::kRcm, 2, 3,
                                                  variant, options),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsTimesVariants, ReorderSweep,
    ::testing::Combine(::testing::Values(LocalBackend::kCsr,
                                         LocalBackend::kSell),
                       ::testing::Values(Variant::kVectorNoOverlap,
                                         Variant::kVectorNaiveOverlap,
                                         Variant::kTaskMode)));

TEST(Reorder, NonePipelineStillExact) {
  // kNone through the same helper: no reassociation happens, so the
  // tolerance can stay at the engine suite's 1e-12.
  const CsrMatrix a = matgen::random_banded(300, 40, 6, 9);
  EXPECT_LT(testutil::reordered_distributed_error(
                a, Reorder::kNone, 3, 2, Variant::kVectorNoOverlap),
            1e-12);
}

}  // namespace
}  // namespace hspmv::spmv
