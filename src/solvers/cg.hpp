// Conjugate gradients for symmetric positive-definite systems — the
// solver family behind the paper's second application (the sAMG Poisson
// problem; multigrid-preconditioned Krylov methods spend their time in
// exactly this spMVM).
#pragma once

#include <vector>

#include "solvers/operator.hpp"

namespace hspmv::solvers {

struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< on ||r|| / ||b||
};

struct CgResult {
  int iterations = 0;
  bool converged = false;
  double residual_norm = 0.0;       ///< final ||r||
  double relative_residual = 0.0;   ///< ||r|| / ||b||
  // HSPMV-CHECK-ALLOW(first-touch): per-iteration convergence log; cold diagnostics
  std::vector<double> residual_history;
};

/// Solve A x = b; `x` holds the initial guess on entry and the solution
/// on exit. Spans must have op.local_size elements.
CgResult conjugate_gradient(const Operator& op,
                            std::span<const sparse::value_t> b,
                            std::span<sparse::value_t> x,
                            const CgOptions& options = {});

/// z = M^{-1} r — application of a preconditioner.
using PreconditionerFn =
    std::function<void(std::span<const sparse::value_t>,
                       std::span<sparse::value_t>)>;

/// Preconditioned CG: same contract as conjugate_gradient with an SPD
/// preconditioner (e.g. an AMG V-cycle). Convergence is still tested on
/// the true residual norm.
CgResult preconditioned_conjugate_gradient(
    const Operator& op, const PreconditionerFn& preconditioner,
    std::span<const sparse::value_t> b, std::span<sparse::value_t> x,
    const CgOptions& options = {});

}  // namespace hspmv::solvers
