// spMVM-as-a-service demo: a batching query server over the blocked
// multi-RHS (SpMM) engine. An open-loop client submits single-vector
// requests at a configurable rate into a bounded queue; the server
// coalesces up to --block of them (bounded by the --wait-ms deadline)
// into one K-wide MultiVector apply per batch, so the matrix streams
// once per K requests (docs/performance.md, B_SpMM(K)). Prints
// p50/p95/p99 latency, throughput, and the realized batch widths, and
// verifies a sample of results against the dense reference.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "matgen/poisson.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "spmv/engine.hpp"
#include "spmv/server.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

namespace {

hspmv::spmv::Variant parse_variant(const std::string& name) {
  using hspmv::spmv::Variant;
  if (name == "vector") return Variant::kVectorNoOverlap;
  if (name == "naive") return Variant::kVectorNaiveOverlap;
  if (name == "taskmode") return Variant::kTaskMode;
  throw std::invalid_argument("unknown variant: " + name +
                              " (vector, naive, taskmode)");
}

/// Request q's payload, reproducible on any thread.
std::vector<hspmv::sparse::value_t> request_payload(std::size_t rows,
                                                    std::uint64_t id,
                                                    std::uint64_t seed) {
  hspmv::util::Xoshiro256 rng(seed + 0x9e3779b97f4a7c15ULL * (id + 1));
  std::vector<hspmv::sparse::value_t> x(rows);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hspmv;
  using sparse::value_t;

  util::CliParser cli("spmv_server",
                      "batching spMVM query server over the SpMM engine");
  cli.add_option("grid", "12", "Poisson cells per axis (N = grid^3)");
  cli.add_option("requests", "48", "number of requests the client submits");
  cli.add_option("rate", "0",
                 "open-loop submit rate in requests/s (0 = burst)");
  cli.add_option("block", "8", "max batch width K");
  cli.add_option("wait-ms", "5",
                 "max wait of the oldest queued request before a partial "
                 "batch leaves");
  cli.add_option("capacity", "64", "queue capacity (back-pressure bound)");
  cli.add_option("ranks", "3", "number of minimpi ranks");
  cli.add_option("threads", "2", "threads per rank");
  cli.add_option("variant", "taskmode",
                 "engine variant: vector, naive, taskmode");
  cli.add_option("backend", "csr", "local kernel backend: csr or sell");
  cli.add_option("seed", "7", "payload PRNG seed");
  cli.add_option("grow", "0",
                 "spawn this many extra ranks (incremental repartition) "
                 "before serving");
  cli.add_option("chaos", "",
                 "kill \"<rank>:<batch>\" mid-run (ULFM shrink + replay); "
                 "rank 0 owns the queue and cannot die");
  if (!cli.parse(argc, argv)) return 1;

  const int grid = static_cast<int>(cli.get_int("grid"));
  const sparse::CsrMatrix a =
      matgen::poisson7({.nx = grid, .ny = grid, .nz = grid});
  const auto rows = static_cast<std::size_t>(a.rows());
  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const double rate = cli.get_double("rate");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  spmv::EngineOptions engine_options;
  engine_options.backend = spmv::parse_backend(cli.get_string("backend"));
  const spmv::Variant variant = parse_variant(cli.get_string("variant"));

  // Chaos plan: "<rank>:<batch>" kills that rank right before that
  // batch's apply (the ULFM shrink + replay path).
  int chaos_rank = -1, chaos_batch = -1;
  const std::string chaos = cli.get_string("chaos");
  if (!chaos.empty()) {
    const auto colon = chaos.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "chaos must be <rank>:<batch>\n");
      return 1;
    }
    chaos_rank = std::stoi(chaos.substr(0, colon));
    chaos_batch = std::stoi(chaos.substr(colon + 1));
    if (chaos_rank <= 0) {
      std::fprintf(stderr, "chaos rank must be > 0 (rank 0 owns the queue)\n");
      return 1;
    }
  }
  const int grow = static_cast<int>(cli.get_int("grow"));

  std::printf("matrix: N = %d, Nnz = %lld | %zu requests, K <= %lld, "
              "deadline %.1f ms | seed %llu%s%s\n",
              a.rows(), static_cast<long long>(a.nnz()), requests,
              static_cast<long long>(cli.get_int("block")),
              cli.get_double("wait-ms"),
              static_cast<unsigned long long>(seed),
              grow > 0 ? " | elastic grow before serving" : "",
              chaos.empty() ? "" : (" | chaos " + chaos).c_str());

  spmv::ServerReport report;
  std::size_t rejected = 0;
  std::mutex report_mutex;
  // Membership timeline on the queue owner: (epoch, ranks) at every
  // batch, deduplicated — each shrink and grow shows up as one entry.
  std::vector<std::pair<std::uint64_t, int>> membership;
  spmv::BatchQueue queue(static_cast<std::size_t>(cli.get_int("capacity")),
                         static_cast<int>(cli.get_int("block")),
                         cli.get_double("wait-ms") * 1e-3);
  spmv::ServerOptions server_options;
  server_options.keep_results = true;
  server_options.before_apply = [&](int batch_index,
                                    const minimpi::Comm& c) {
    if (c.rank() == 0) {
      std::lock_guard<std::mutex> lock(report_mutex);
      const std::pair<std::uint64_t, int> now{c.epoch(), c.size()};
      if (membership.empty() || membership.back() != now) {
        membership.push_back(now);
      }
    }
    if (batch_index == chaos_batch && c.global_rank() == chaos_rank) {
      c.simulate_rank_failure();
    }
  };
  const int threads = static_cast<int>(cli.get_int("threads"));
  minimpi::run(static_cast<int>(cli.get_int("ranks")),
               [&](minimpi::Comm& comm) {
    spmv::SpmvServer server(comm, a, threads, variant, engine_options,
                            server_options);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(report_mutex);
      membership.push_back({comm.epoch(), comm.size()});
    }
    if (grow > 0) {
      // Joiners enter the incremental-migration collective and then
      // serve the same queue the founders do.
      server.grow(grow, [&](minimpi::Comm& grown) {
        spmv::SpmvServer joiner(spmv::RecoverableSpmv::JoinerTag{}, grown, a,
                                threads, variant, engine_options,
                                server_options);
        try {
          (void)joiner.serve(queue);
        } catch (const minimpi::FaultError&) {
          // the joiner was the chaos victim; it leaves the service
        }
      });
    }

    // The client rides on rank 0: open-loop arrivals at `rate`, dropped
    // (not retried) when back-pressure rejects them.
    std::thread client;
    if (comm.rank() == 0) {
      client = std::thread([&] {
        std::size_t dropped = 0;
        for (std::uint64_t r = 0; r < requests; ++r) {
          auto x = request_payload(rows, r, seed);
          if (!queue.try_submit(r, x)) ++dropped;
          if (rate > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(1.0 / rate));
          }
        }
        queue.close();
        std::lock_guard<std::mutex> lock(report_mutex);
        rejected = dropped;
      });
    }

    try {
      spmv::ServerReport local = server.serve(queue);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(report_mutex);
        report = std::move(local);
      }
    } catch (const minimpi::FaultError&) {
      // the chaos victim's serve rethrows; the survivors finish the run
    }
    if (client.joinable()) client.join();
  });

  if (report.completed.empty()) {
    std::printf("no requests completed\n");
    return 1;
  }

  // Verify a sample against the per-row dense reference.
  double max_error = 0.0;
  const std::size_t step = std::max<std::size_t>(report.completed.size() / 8, 1);
  for (std::size_t c = 0; c < report.completed.size(); c += step) {
    const auto& done = report.completed[c];
    const auto x = request_payload(rows, done.id, seed);
    for (sparse::index_t i = 0; i < a.rows(); ++i) {
      const auto [cols, vals] = a.row(i);
      value_t sum = 0.0;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        sum += vals[j] * x[static_cast<std::size_t>(cols[j])];
      }
      max_error = std::max(
          max_error, std::abs(done.y[static_cast<std::size_t>(i)] - sum));
    }
  }

  double width_sum = 0.0;
  for (const int w : report.batch_widths) width_sum += w;
  std::printf(
      "served %zu requests in %zu batches (mean K = %.2f), %zu rejected, "
      "%lld rebuild(s), %lld grow(s)\n"
      "latency p50/p95/p99 = %.2f / %.2f / %.2f ms, throughput = %.1f "
      "req/s\n",
      report.completed.size(), report.batch_widths.size(),
      report.batch_widths.empty() ? 0.0 : width_sum /
          static_cast<double>(report.batch_widths.size()),
      rejected, static_cast<long long>(report.rebuilds),
      static_cast<long long>(report.grows),
      report.latency_percentile(50.0) * 1e3,
      report.latency_percentile(95.0) * 1e3,
      report.latency_percentile(99.0) * 1e3, report.throughput_rps());
  if (report.rows_full_replication > 0) {
    std::printf(
        "topology changes migrated %lld rows (full re-replication would "
        "have touched %lld: %.0f%% saved)\n",
        static_cast<long long>(report.rows_migrated),
        static_cast<long long>(report.rows_full_replication),
        100.0 * (1.0 - static_cast<double>(report.rows_migrated) /
                           static_cast<double>(report.rows_full_replication)));
  }
  std::printf("membership by epoch:");
  for (const auto& [epoch, ranks] : membership) {
    std::printf(" e%llu:%d", static_cast<unsigned long long>(epoch), ranks);
  }
  std::printf(" (seed %llu%s)\n", static_cast<unsigned long long>(seed),
              chaos.empty() ? "" : (", chaos " + chaos).c_str());
  std::printf("max |y - y_ref| = %.2e  %s\n", max_error,
              max_error < 1e-11 ? "OK" : "MISMATCH");
  return max_error < 1e-11 ? 0 : 1;
}
