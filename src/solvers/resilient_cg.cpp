// Fault-tolerant distributed conjugate gradients.
//
// The iteration is the textbook CG of cg.cpp on a RecoverableSpmv
// operator, wrapped in the recovery protocol: checkpoint x every K
// iterations (buddy-replicated), and on FaultError shrink the
// communicator, rebuild the engine over the survivors, restore the last
// complete checkpoint, restart the recurrence from it (r = b - A x,
// p = r), and continue. Transient faults never reach this level when the
// engine's retry policy absorbs them; one that escapes (retries
// exhausted, exchange deadline) is rethrown — retrying a healthy
// exchange is the engine's job, not the solver's.
#include <cmath>
#include <stdexcept>

#include "solvers/resilience.hpp"
#include "sparse/vector_ops.hpp"
#include "spmv/resilient.hpp"
#include "util/timer.hpp"

namespace hspmv::solvers {

using sparse::index_t;
using sparse::value_t;

ResilientCgResult resilient_cg(minimpi::Comm comm,
                               const sparse::CsrMatrix& global,
                               std::span<const value_t> b,
                               const ResilienceOptions& resilience,
                               const CgOptions& options) {
  if (global.rows() != global.cols()) {
    throw std::invalid_argument("resilient_cg: matrix must be square");
  }
  if (b.size() != static_cast<std::size_t>(global.rows())) {
    throw std::invalid_argument(
        "resilient_cg: b must be the replicated global right-hand side");
  }
  if (resilience.checkpoint_interval < 1) {
    throw std::invalid_argument(
        "resilient_cg: checkpoint_interval must be >= 1");
  }
  const int world_rank = comm.global_rank();

  ResilientCgResult out;
  RecoveryStats& stats = out.recovery;
  spmv::RecoverableSpmv op(std::move(comm), global, resilience.threads,
                           resilience.variant, resilience.engine);
  BuddyCheckpoint store;

  // Partition-local state, rebuilt on every recovery.
  index_t row_begin = 0;
  std::size_t n = 0;
  spmv::DistVector xd = op.make_vector();
  spmv::DistVector yd = op.make_vector();
  std::vector<value_t> x, r, p, ap;

  const auto resize_state = [&] {
    row_begin = op.matrix().row_begin();
    n = static_cast<std::size_t>(op.matrix().owned_rows());
    x.assign(n, 0.0);
    r.assign(n, 0.0);
    p.assign(n, 0.0);
    ap.assign(n, 0.0);
    xd = op.make_vector();
    yd = op.make_vector();
  };
  const auto apply = [&](const std::vector<value_t>& in,
                         std::vector<value_t>& result) {
    std::copy(in.begin(), in.end(), xd.owned().begin());
    const spmv::Timings t = op.apply(xd, yd);
    stats.transient_retries += t.retries;
    std::copy(yd.owned().begin(), yd.owned().end(), result.begin());
  };
  const auto dot = [&](std::span<const value_t> u,
                       std::span<const value_t> v) {
    // Pinned local order (sparse::dot) so the distributed dot is
    // bitwise-stable for a fixed partition.
    const value_t local = sparse::dot(u, v);
    return op.comm().allreduce(local, minimpi::ReduceOp::kSum);
  };
  const auto local_b = [&] {
    return b.subspan(static_cast<std::size_t>(row_begin), n);
  };
  /// (Re)start the recurrence from the current x: r = b - A x, p = r.
  const auto restart = [&] {
    apply(x, ap);
    const auto bl = local_b();
    for (std::size_t i = 0; i < n; ++i) r[i] = bl[i] - ap[i];
    std::copy(r.begin(), r.end(), p.begin());
    return dot(r, r);
  };

  resize_state();
  const double b_norm = std::sqrt(dot(local_b(), local_b()));
  const double threshold =
      options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  double rr = restart();
  out.cg.residual_history.push_back(std::sqrt(rr));

  int it = 0;
  bool converged = std::sqrt(rr) <= threshold;
  while (!converged && it < options.max_iterations) {
    try {
      // Checkpoint before the planned-failure hook fires: a victim dying
      // at a checkpoint iteration commits its slice to the buddy first,
      // so that iteration (not the previous one) is restorable.
      if (it % resilience.checkpoint_interval == 0) {
        store.save(op.comm(), row_begin, it,
                   {std::span<const value_t>(x)}, {});
      }
      for (const FailurePlan& plan : resilience.failures) {
        if (plan.rank == world_rank && plan.iteration == it) {
          op.comm().simulate_rank_failure();
        }
      }

      apply(p, ap);
      const double p_ap = dot(p, ap);
      if (p_ap <= 0.0) {
        throw std::runtime_error(
            "resilient_cg: operator is not positive definite (p'Ap <= 0)");
      }
      const double alpha = rr / p_ap;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      const double rr_next = dot(r, r);
      const double beta = rr_next / rr;
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
      rr = rr_next;
      ++it;
      out.cg.residual_history.push_back(std::sqrt(rr));
      converged = std::sqrt(rr) <= threshold;
    } catch (const minimpi::FaultError& fault) {
      if (fault.kind() == minimpi::FaultKind::kTransient) throw;
      // HSPMV-CHECK-ALLOW(divergent-collective): the victim rank is dead to the protocol; survivors shrink and rebuild the communicator before their next collective
      if (fault.rank() == world_rank) {
        // This rank was killed: leave quietly, the survivors carry on.
        stats.survivor = false;
        stats.final_size = 0;
        return out;
      }
      util::Timer recovery_timer;
      minimpi::FaultError current = fault;
      for (int attempt = 0;; ++attempt) {
        if (attempt >= resilience.max_recoveries) throw current;
        try {
          op.shrink_and_rebuild();
          const auto restored = store.restore_global(
              op.comm(), global.rows(), op.matrix().row_begin(),
              op.matrix().owned_rows());
          stats.iterations_lost += it - static_cast<int>(restored.iteration);
          it = static_cast<int>(restored.iteration);
          resize_state();
          std::copy(restored.vectors.at(0).begin() + row_begin,
                    restored.vectors.at(0).begin() + row_begin +
                        static_cast<std::ptrdiff_t>(n),
                    x.begin());
          rr = restart();
          out.cg.residual_history.resize(static_cast<std::size_t>(it));
          out.cg.residual_history.push_back(std::sqrt(rr));
          converged = std::sqrt(rr) <= threshold;
          // Replicate the restored slice to the new buddy right away:
          // the next failure must not depend on reaching the next
          // scheduled checkpoint.
          store.save(op.comm(), row_begin, it,
                     {std::span<const value_t>(x)}, {});
          ++stats.failures_recovered;
          break;
        } catch (const CheckpointLostError&) {
          throw;
        } catch (const minimpi::FaultError& again) {
          // Another death mid-recovery: run the whole recovery again
          // under the new epoch.
          if (again.kind() == minimpi::FaultKind::kTransient) throw;
          // HSPMV-CHECK-ALLOW(divergent-collective): the victim rank is dead to the protocol; survivors shrink and rebuild the communicator before their next collective
          if (again.rank() == world_rank) {
            stats.survivor = false;
            stats.final_size = 0;
            return out;
          }
          current = again;
        }
      }
      stats.recovery_seconds += recovery_timer.seconds();
    }
  }

  out.cg.iterations = it;
  out.cg.converged = converged;
  out.cg.residual_norm = std::sqrt(rr);
  out.cg.relative_residual =
      b_norm > 0.0 ? out.cg.residual_norm / b_norm : out.cg.residual_norm;
  stats.final_size = op.comm().size();
  out.x = op.comm().allgatherv(std::span<const value_t>(x));
  return out;
}

}  // namespace hspmv::solvers
