#include "matgen/heisenberg.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "solvers/lanczos.hpp"
#include "sparse/stats.hpp"

namespace hspmv::matgen {
namespace {

using sparse::CsrMatrix;
using sparse::index_t;

bool numerically_symmetric(const CsrMatrix& a) {
  const CsrMatrix t = a.transpose();
  if (t.nnz() != a.nnz()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto [ca, va] = a.row(i);
    const auto [ct, vt] = t.row(i);
    for (std::size_t k = 0; k < ca.size(); ++k) {
      if (ca[k] != ct[k] || std::abs(va[k] - vt[k]) > 1e-12) return false;
    }
  }
  return true;
}

TEST(Heisenberg, SectorDimensions) {
  EXPECT_EQ(heisenberg_dimension({.sites = 10, .up_spins = 5}), 252);
  EXPECT_EQ(heisenberg_dimension({.sites = 12, .up_spins = 6}), 924);
  EXPECT_EQ(heisenberg_dimension({.sites = 8, .up_spins = 0}), 1);
}

TEST(Heisenberg, TwoSiteSinglet) {
  // Open 2-site chain, S^z = 0 sector: H = J(S+S-/2 + h.c. + D SzSz) on
  // {|ud>, |du>}: diagonal -J/4, off-diagonal J/2; ground state (the
  // singlet) at -3J/4.
  HeisenbergParams p{.sites = 2, .up_spins = 1, .coupling = 1.0,
                     .anisotropy = 1.0, .periodic = false};
  const CsrMatrix h = heisenberg_chain(p);
  ASSERT_EQ(h.rows(), 2);
  EXPECT_DOUBLE_EQ(h.at(0, 0), -0.25);
  EXPECT_DOUBLE_EQ(h.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(h.at(1, 1), -0.25);
  const auto result = solvers::lanczos(solvers::make_operator(h));
  EXPECT_NEAR(result.smallest(), -0.75, 1e-10);
}

TEST(Heisenberg, IsSymmetric) {
  const CsrMatrix h = heisenberg_chain({.sites = 8, .up_spins = 4});
  EXPECT_TRUE(numerically_symmetric(h));
}

TEST(Heisenberg, FerromagneticSectorIsDiagonal) {
  // All spins up: no antiparallel pairs, so no off-diagonals; energy =
  // J * Delta * bonds / 4.
  const CsrMatrix h =
      heisenberg_chain({.sites = 6, .up_spins = 6, .anisotropy = 0.7});
  ASSERT_EQ(h.rows(), 1);
  EXPECT_EQ(h.nnz(), 1);
  EXPECT_NEAR(h.at(0, 0), 0.7 * 6 * 0.25, 1e-12);
}

TEST(Heisenberg, XYLimitHasZeroDiagonalBulk) {
  // Delta = 0: the S^z S^z term vanishes; diagonals are exactly 0.
  const CsrMatrix h = heisenberg_chain(
      {.sites = 6, .up_spins = 3, .anisotropy = 0.0});
  for (index_t i = 0; i < h.rows(); ++i) {
    EXPECT_DOUBLE_EQ(h.at(i, i), 0.0);
  }
}

TEST(Heisenberg, KnownGroundStateEnergy12Sites) {
  // Periodic isotropic chain, L = 12, S^z = 0: E0/L = -0.4534... (exact
  // diagonalization literature value E0 = -5.387390917).
  const CsrMatrix h = heisenberg_chain({.sites = 12, .up_spins = 6});
  solvers::LanczosOptions options;
  options.max_iterations = 200;
  options.full_reorthogonalization = true;
  const auto result = solvers::lanczos(solvers::make_operator(h), options);
  EXPECT_NEAR(result.smallest(), -5.387390917, 1e-6);
}

TEST(Heisenberg, NnzrGrowsWithChainLength) {
  const auto s8 = sparse::compute_stats(
      heisenberg_chain({.sites = 8, .up_spins = 4}));
  const auto s12 = sparse::compute_stats(
      heisenberg_chain({.sites = 12, .up_spins = 6}));
  EXPECT_GT(s12.nnz_per_row_mean, s8.nnz_per_row_mean);
  EXPECT_EQ(s8.empty_rows, 0);
  EXPECT_TRUE(s8.has_full_diagonal);
}

TEST(Heisenberg, GuardsAndValidation) {
  EXPECT_THROW((void)heisenberg_chain({.sites = 1, .up_spins = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)heisenberg_chain({.sites = 8, .up_spins = 9}),
               std::invalid_argument);
  EXPECT_THROW((void)heisenberg_chain({.sites = 30, .up_spins = 15},
                                      /*max_dimension=*/1000),
               std::length_error);
}

TEST(Heisenberg, OpenVsPeriodicBondCount) {
  // The periodic wrap adds one bond: more off-diagonal entries.
  HeisenbergParams p{.sites = 6, .up_spins = 3};
  p.periodic = true;
  const auto ring_nnz = heisenberg_chain(p).nnz();
  p.periodic = false;
  const auto chain_nnz = heisenberg_chain(p).nnz();
  EXPECT_GT(ring_nnz, chain_nnz);
}

}  // namespace
}  // namespace hspmv::matgen
