#include "sparse/kernels.hpp"

#include <algorithm>
#include <stdexcept>

namespace hspmv::sparse {
namespace {

void check_shapes(const CsrMatrix& a, std::span<const value_t> b,
                  std::span<value_t> c) {
  if (b.size() < static_cast<std::size_t>(a.cols()) ||
      c.size() < static_cast<std::size_t>(a.rows())) {
    throw std::invalid_argument("spmv: vector size mismatch");
  }
}

}  // namespace

void spmv(const CsrMatrix& a, std::span<const value_t> b,
          std::span<value_t> c) {
  check_shapes(a, b, c);
  spmv_rows(a, 0, a.rows(), b, c);
}

void spmv_rows(const CsrMatrix& a, index_t row_begin, index_t row_end,
               std::span<const value_t> b, std::span<value_t> c) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto val = a.val();
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t sum = 0.0;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += val[static_cast<std::size_t>(j)] *
             b[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    c[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_accumulate(const CsrMatrix& a, std::span<const value_t> b,
                     std::span<value_t> c) {
  check_shapes(a, b, c);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto val = a.val();
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t sum = c[static_cast<std::size_t>(i)];
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += val[static_cast<std::size_t>(j)] *
             b[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    c[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_general(value_t alpha, const CsrMatrix& a,
                  std::span<const value_t> b, value_t beta,
                  std::span<value_t> c) {
  check_shapes(a, b, c);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto val = a.val();
  for (index_t i = 0; i < a.rows(); ++i) {
    value_t sum = 0.0;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += val[static_cast<std::size_t>(j)] *
             b[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    c[static_cast<std::size_t>(i)] =
        alpha * sum + beta * c[static_cast<std::size_t>(i)];
  }
}

void spmv_local(const CsrMatrix& a, index_t local_cols,
                std::span<const value_t> b, std::span<value_t> c) {
  check_shapes(a, b, c);
  spmv_local_rows(a, local_cols, 0, a.rows(), b, c);
}

void spmv_local_rows(const CsrMatrix& a, index_t local_cols, index_t row_begin,
                     index_t row_end, std::span<const value_t> b,
                     std::span<value_t> c) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto val = a.val();
  for (index_t i = row_begin; i < row_end; ++i) {
    value_t sum = 0.0;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      const index_t col = col_idx[static_cast<std::size_t>(j)];
      if (col >= local_cols) break;  // sorted rows: non-local suffix begins
      sum += val[static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(col)];
    }
    c[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_nonlocal(const CsrMatrix& a, index_t local_cols,
                   std::span<const value_t> b, std::span<value_t> c) {
  check_shapes(a, b, c);
  spmv_nonlocal_rows(a, local_cols, 0, a.rows(), b, c);
}

void spmv_nonlocal_rows(const CsrMatrix& a, index_t local_cols,
                        index_t row_begin, index_t row_end,
                        std::span<const value_t> b, std::span<value_t> c) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto val = a.val();
  for (index_t i = row_begin; i < row_end; ++i) {
    const offset_t begin = row_ptr[static_cast<std::size_t>(i)];
    const offset_t end = row_ptr[static_cast<std::size_t>(i) + 1];
    // Binary-search the first non-local entry; rows are column-sorted.
    const auto cols = col_idx.subspan(static_cast<std::size_t>(begin),
                                      static_cast<std::size_t>(end - begin));
    const auto first_nonlocal =
        std::lower_bound(cols.begin(), cols.end(), local_cols) - cols.begin();
    value_t sum = 0.0;
    for (offset_t j = begin + first_nonlocal; j < end; ++j) {
      sum += val[static_cast<std::size_t>(j)] *
             b[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    if (sum != 0.0 || first_nonlocal < end - begin) {
      c[static_cast<std::size_t>(i)] += sum;
    }
  }
}

}  // namespace hspmv::sparse
