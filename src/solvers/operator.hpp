// Abstract operator/reduction interfaces for the iterative solvers.
//
// Solvers only need y = A x and global dot products; supplying them as
// callables lets the same Lanczos/CG/Chebyshev code run on a sequential
// CsrMatrix or on a DistMatrix + SpmvEngine (where the dot product hides
// an allreduce). This mirrors how the paper's applications (Lanczos,
// Jacobi-Davidson, KPM, Chebyshev time evolution — Sect. 1.3.1) consume
// the spMVM kernel.
#pragma once

#include <functional>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"
#include "sparse/vector_ops.hpp"

namespace hspmv::solvers {

/// y = A x over local spans.
using ApplyFn =
    std::function<void(std::span<const sparse::value_t>,
                       std::span<sparse::value_t>)>;

/// Global dot product over the distributed vector (plain dot for the
/// sequential case).
using DotFn = std::function<sparse::value_t(
    std::span<const sparse::value_t>, std::span<const sparse::value_t>)>;

struct Operator {
  ApplyFn apply;
  DotFn dot;
  std::size_t local_size = 0;
};

/// Wrap a sequential CSR matrix (must be square).
Operator make_operator(const sparse::CsrMatrix& a);

}  // namespace hspmv::solvers
