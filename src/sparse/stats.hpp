// Structural statistics of sparse matrices: Nnzr distribution, bandwidth,
// profile — the quantities that drive the paper's performance model and
// load-balance discussion.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace hspmv::sparse {

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  double nnz_per_row_mean = 0.0;  ///< the paper's Nnzr
  index_t nnz_per_row_min = 0;
  index_t nnz_per_row_max = 0;
  double nnz_per_row_stddev = 0.0;
  /// Matrix bandwidth: max over nonzeros of |i - j| (0 for empty matrices).
  index_t bandwidth = 0;
  /// Profile (a.k.a. envelope): sum over rows of (i - min column in row)
  /// for rows with at least one entry at or left of the diagonal.
  std::int64_t profile = 0;
  index_t empty_rows = 0;
  bool has_full_diagonal = false;
};

MatrixStats compute_stats(const CsrMatrix& a);

/// Histogram of row lengths: bucket[k] = number of rows with exactly k
/// nonzeros, truncated at `max_len` (longer rows land in the last bucket).
std::vector<std::int64_t> row_length_histogram(const CsrMatrix& a,
                                               index_t max_len);

}  // namespace hspmv::sparse
