#include "sparse/kernels.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "matgen/random_matrix.hpp"
#include "sparse/coo.hpp"
#include "util/prng.hpp"

namespace hspmv::sparse {
namespace {

// Dense reference multiply.
std::vector<value_t> dense_spmv(const CsrMatrix& a,
                                const std::vector<value_t>& b) {
  std::vector<value_t> c(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      c[static_cast<std::size_t>(i)] +=
          a.at(i, j) * b[static_cast<std::size_t>(j)];
    }
  }
  return c;
}

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<value_t> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Kernels, MatchesDenseReferenceSmall) {
  CooBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(0, 2, -1.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 0, 1.0);
  const CsrMatrix a(3, 3, builder.finish());
  const std::vector<value_t> b{1.0, 2.0, 3.0};
  std::vector<value_t> c(3, 99.0);
  spmv(a, b, c);
  EXPECT_DOUBLE_EQ(c[0], -1.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

TEST(Kernels, RectangularMatrix) {
  CooBuilder builder(2, 4);
  builder.add(0, 3, 1.0);
  builder.add(1, 0, 2.0);
  const CsrMatrix a(2, 4, builder.finish());
  const std::vector<value_t> b{1.0, 2.0, 3.0, 4.0};
  std::vector<value_t> c(2);
  spmv(a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(Kernels, SizeMismatchThrows) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  const CsrMatrix a(2, 2, builder.finish());
  std::vector<value_t> small_b(1), c(2);
  EXPECT_THROW(spmv(a, small_b, c), std::invalid_argument);
  std::vector<value_t> b(2), small_c(1);
  EXPECT_THROW(spmv(a, b, small_c), std::invalid_argument);
}

TEST(Kernels, AccumulateAddsToExisting) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 2.0);
  const CsrMatrix a(2, 2, builder.finish());
  const std::vector<value_t> b{3.0, 4.0};
  std::vector<value_t> c{10.0, 20.0};
  spmv_accumulate(a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 13.0);
  EXPECT_DOUBLE_EQ(c[1], 28.0);
}

TEST(Kernels, GeneralAlphaBeta) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 2.0);
  const CsrMatrix a(2, 2, builder.finish());
  const std::vector<value_t> b{1.0, 1.0};
  std::vector<value_t> c{5.0, 5.0};
  spmv_general(2.0, a, b, -1.0, c);  // c = 2*A*b - c
  EXPECT_DOUBLE_EQ(c[0], -3.0);
  EXPECT_DOUBLE_EQ(c[1], -1.0);
}

TEST(Kernels, RowRangeCoversPartition) {
  const CsrMatrix a = matgen::random_sparse(50, 5, 7);
  const auto b = random_vector(50, 1);
  std::vector<value_t> full(50), pieces(50);
  spmv(a, b, full);
  spmv_rows(a, 0, 20, b, pieces);
  spmv_rows(a, 20, 35, b, pieces);
  spmv_rows(a, 35, 50, b, pieces);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(pieces[i], full[i]) << "row " << i;
  }
}

// Property: for any split column, local + nonlocal phases reproduce the
// monolithic kernel exactly (same summation order within each phase, so we
// allow tiny roundoff differences from reordering across the split).
class SplitKernelProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitKernelProperty, LocalPlusNonlocalEqualsFull) {
  const auto [n, local_cols] = GetParam();
  const CsrMatrix a =
      matgen::random_sparse(n, 6, static_cast<std::uint64_t>(n));
  const auto b = random_vector(static_cast<std::size_t>(n), 2);
  std::vector<value_t> full(static_cast<std::size_t>(n));
  std::vector<value_t> split(static_cast<std::size_t>(n));
  spmv(a, b, full);
  spmv_local(a, local_cols, b, split);
  spmv_nonlocal(a, local_cols, b, split);
  for (std::size_t i = 0; i < split.size(); ++i) {
    EXPECT_NEAR(split[i], full[i], 1e-12) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, SplitKernelProperty,
    ::testing::Combine(::testing::Values(1, 17, 64, 200),
                       ::testing::Values(0, 1, 10, 32, 64, 200)));

TEST(Kernels, SplitRowRangesCompose) {
  const int n = 80;
  const index_t local_cols = 30;
  const CsrMatrix a = matgen::random_sparse(n, 8, 99);
  const auto b = random_vector(n, 3);
  std::vector<value_t> expected(n), got(n);
  spmv(a, b, expected);
  // Task-mode pattern: local phase in two chunks, then nonlocal in two
  // different chunks.
  spmv_local_rows(a, local_cols, 0, 50, b, got);
  spmv_local_rows(a, local_cols, 50, 80, b, got);
  spmv_nonlocal_rows(a, local_cols, 0, 25, b, got);
  spmv_nonlocal_rows(a, local_cols, 25, 80, b, got);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Kernels, LocalAllColumnsEqualsFull) {
  const CsrMatrix a = matgen::random_sparse(40, 5, 5);
  const auto b = random_vector(40, 4);
  std::vector<value_t> full(40), local_only(40);
  spmv(a, b, full);
  spmv_local(a, 40, b, local_only);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(local_only[i], full[i]);
  }
}

TEST(Kernels, NonlocalZeroColumnsEqualsFull) {
  const CsrMatrix a = matgen::random_sparse(40, 5, 6);
  const auto b = random_vector(40, 5);
  std::vector<value_t> full(40), nonlocal_only(40, 0.0);
  spmv(a, b, full);
  spmv_nonlocal(a, 0, b, nonlocal_only);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(nonlocal_only[i], full[i], 1e-12);
  }
}

TEST(Kernels, RandomAgainstDense) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const CsrMatrix a = matgen::random_sparse(30, 4, seed);
    const auto b = random_vector(30, seed + 100);
    std::vector<value_t> c(30);
    spmv(a, b, c);
    const auto reference = dense_spmv(a, b);
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_NEAR(c[i], reference[i], 1e-12);
    }
  }
}

}  // namespace
}  // namespace hspmv::sparse
