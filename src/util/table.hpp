// ASCII table rendering for benchmark harness output.
//
// Every figure/table harness in bench/ prints its series as aligned text
// tables so the paper artifacts can be eyeballed (and diffed) without a
// plotting stack.
#pragma once

#include <string>
#include <vector>

namespace hspmv::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; the cell count must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string cell(double value, int precision = 3);
  static std::string cell(std::int64_t value);
  static std::string cell(std::size_t value);

  /// Render with column alignment; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string to_string() const;

  /// Render as comma-separated values (for scripting).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hspmv::util
