// Sparsity-pattern inspector: read a Matrix Market file (or generate one
// of the built-in families) and print structural statistics plus the
// Fig. 1-style block-occupancy spy plot.
//
//   spy matrix.mtx
//   spy --family hmep --scale 0
//   spy matrix.mtx --rcm          # after RCM reordering

#include <cstdio>
#include <string>

#include "common/paper_matrices.hpp"
#include "sparse/mmio.hpp"
#include "sparse/occupancy.hpp"
#include "sparse/rcm.hpp"
#include "sparse/stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  util::CliParser cli("spy", "sparsity-pattern inspector");
  cli.add_option("family", "",
                 "generate instead of reading a file: hmep | hmeP-alt | "
                 "samg");
  cli.add_option("scale", "0", "instance scale level for --family (0..3)");
  cli.add_option("target", "64", "spy-plot resolution (blocks per side)");
  cli.add_flag("rcm", "apply Reverse Cuthill-McKee before plotting");
  if (!cli.parse(argc, argv)) return 1;

  sparse::CsrMatrix matrix;
  std::string name;
  const std::string family = cli.get_string("family");
  if (!family.empty()) {
    const int scale = static_cast<int>(cli.get_int("scale"));
    bench::PaperMatrix pm;
    if (family == "hmep") {
      pm = bench::make_hmep(scale);
    } else if (family == "hmeP-alt") {
      pm = bench::make_hmep_electron(scale);
    } else if (family == "samg") {
      pm = bench::make_samg(scale);
    } else {
      std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
      return 1;
    }
    matrix = std::move(pm.matrix);
    name = pm.name;
  } else {
    if (cli.positional().empty()) {
      std::fprintf(stderr,
                   "usage: spy <file.mtx> | spy --family <name>\n");
      return 1;
    }
    name = cli.positional().front();
    try {
      matrix = sparse::read_matrix_market_file(name);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }

  if (cli.get_flag("rcm")) {
    matrix = sparse::rcm_reorder(matrix);
    name += " (RCM)";
  }

  const auto stats = sparse::compute_stats(matrix);
  std::printf(
      "%s\n  %d x %d, Nnz = %lld\n  Nnzr: mean %.2f, min %d, max %d, "
      "stddev %.2f\n  bandwidth %d, profile %lld, empty rows %d, full "
      "diagonal: %s\n\n",
      name.c_str(), stats.rows, stats.cols,
      static_cast<long long>(stats.nnz), stats.nnz_per_row_mean,
      stats.nnz_per_row_min, stats.nnz_per_row_max, stats.nnz_per_row_stddev,
      stats.bandwidth, static_cast<long long>(stats.profile),
      stats.empty_rows, stats.has_full_diagonal ? "yes" : "no");

  const auto grid = sparse::block_occupancy_auto(
      matrix, static_cast<sparse::index_t>(cli.get_int("target")));
  std::printf("%s", sparse::render_spy(grid).c_str());
  return 0;
}
