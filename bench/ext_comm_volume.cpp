// EXP-E3 (extension) — the communication-volume curve behind the paper's
// "universal drop in scalability beyond about six nodes ... ascribed to a
// strong decrease in overall internode communication volume when the
// number of nodes is small" (Sect. 4), plus the RCM reorder pre-pass
// (Sect. 1.3.1): bandwidth reduction clusters nonzeros near the diagonal,
// so a contiguous partition needs fewer remote RHS elements.
//
// For HMeP, the total internode halo volume grows steeply while few nodes
// own large contiguous blocks (every new cut exposes fresh coupling
// surface) and then saturates; once it stops growing, each added node
// brings pure comm overhead and the efficiency knee appears.
//
// --reorder={none,rcm} selects the pre-pass for the volume tables; a
// delta section always compares both at --parts parts, and a distributed
// run verifies the reordered pipeline end to end: the engine executes
// y' = (P A P^T)(P x), the result is mapped back with the inverse
// permutation, and the bench checks (a) the un-permuted result against
// the sequential oracle on the original matrix and (b) that parallel and
// serial gather produce bitwise-identical results (same bytes through
// either data path).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/paper_matrices.hpp"
#include "minimpi/runtime.hpp"
#include "sparse/kernels.hpp"
#include "sparse/stats.hpp"
#include "spmv/comm_plan.hpp"
#include "spmv/engine.hpp"
#include "spmv/partition.hpp"
#include "spmv/reorder.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace hspmv;
using sparse::value_t;

std::int64_t halo_elements_at(const sparse::CsrMatrix& a, int parts) {
  const auto boundaries = spmv::partition_rows(
      a, parts, spmv::PartitionStrategy::kBalancedNonzeros);
  return spmv::analyze_partition(a, boundaries).total_halo_elements();
}

/// Run the distributed engine on `a` across `ranks` and gather the owned
/// results (engine-placed vectors, selectable gather path).
std::vector<value_t> engine_product(const sparse::CsrMatrix& a,
                                    std::span<const value_t> x_global,
                                    int ranks, bool parallel_gather,
                                    spmv::Timings* volume = nullptr) {
  std::vector<value_t> result(static_cast<std::size_t>(a.rows()), 0.0);
  std::mutex mutex;
  minimpi::RuntimeOptions options;
  options.ranks = ranks;
  minimpi::run(options, [&](minimpi::Comm& comm) {
    const auto boundaries = spmv::partition_rows(
        a, comm.size(), spmv::PartitionStrategy::kBalancedNonzeros);
    spmv::DistMatrix dist(comm, a, boundaries);
    spmv::EngineOptions engine_options;
    engine_options.parallel_gather = parallel_gather;
    spmv::SpmvEngine engine(dist, /*threads=*/2,
                            spmv::Variant::kVectorNoOverlap, engine_options);
    auto x = engine.make_vector();
    auto y = engine.make_vector();
    x.assign_from_global(x_global, dist.row_begin());
    const auto t = engine.apply(x, y);
    std::lock_guard<std::mutex> lock(mutex);
    if (volume != nullptr) *volume += t;
    for (sparse::index_t i = 0; i < dist.owned_rows(); ++i) {
      result[static_cast<std::size_t>(dist.row_begin() + i)] =
          y.owned()[static_cast<std::size_t>(i)];
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ext_comm_volume",
                      "extension: internode comm volume vs node count");
  cli.add_option("scale", "1", "paper-matrix scale level (0..3; 3 = full paper size)");
  cli.add_option("procs-per-node", "2", "processes per node (per-LD = 2)");
  cli.add_option("reorder", "none", "global pre-pass: none or rcm");
  cli.add_option("parts", "4", "part count for the reorder delta/verify section");
  if (!cli.parse(argc, argv)) return 1;
  const int ppn = static_cast<int>(cli.get_int("procs-per-node"));
  const auto reorder = spmv::parse_reorder(cli.get_string("reorder"));
  const int parts = static_cast<int>(cli.get_int("parts"));

  for (auto& pm :
       {bench::make_hmep(static_cast<int>(cli.get_int("scale"))),
        bench::make_samg(static_cast<int>(cli.get_int("scale")))}) {
    const auto problem = spmv::make_reordered_problem(pm.matrix, reorder);
    const auto& a = problem.matrix;
    std::printf("--- %s (N = %d, reorder=%s, bandwidth %d -> %d) ---\n",
                pm.name.c_str(), a.rows(), spmv::reorder_name(reorder),
                sparse::compute_stats(pm.matrix).bandwidth,
                sparse::compute_stats(a).bandwidth);
    util::Table table({"nodes", "total_halo_elements",
                       "internode halo [MB, extrapolated]",
                       "growth vs previous", "per node [MB]"});
    double previous = 0.0;
    for (int nodes = 1; nodes <= 32; nodes *= 2) {
      const int processes = nodes * ppn;
      const auto boundaries = spmv::partition_rows(
          a, processes, spmv::PartitionStrategy::kBalancedNonzeros);
      const auto stats = spmv::analyze_partition(a, boundaries);
      double internode_elements = 0.0;
      for (int p = 0; p < processes; ++p) {
        const int my_node = p / ppn;
        for (const auto& [peer, count] :
             stats.recv_from[static_cast<std::size_t>(p)]) {
          if (peer / ppn != my_node) {
            internode_elements += static_cast<double>(count);
          }
        }
      }
      const double megabytes =
          internode_elements * 8.0 * pm.comm_volume_scale / 1e6;
      table.add_row(
          {util::Table::cell(static_cast<std::int64_t>(nodes)),
           util::Table::cell(stats.total_halo_elements()),
           util::Table::cell(megabytes, 2),
           previous > 0.0
               ? util::Table::cell(megabytes / previous, 2) + "x"
               : std::string("-"),
           util::Table::cell(nodes > 0 ? megabytes / nodes : 0.0, 2)});
      previous = megabytes;
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Reorder delta at a fixed part count: the halo volume RCM is meant to
  // shrink, measured on both paper matrices.
  std::printf("reorder delta at %d parts (total_halo_elements):\n", parts);
  for (auto& pm :
       {bench::make_hmep(static_cast<int>(cli.get_int("scale"))),
        bench::make_samg(static_cast<int>(cli.get_int("scale")))}) {
    const auto rcm = spmv::make_reordered_problem(pm.matrix,
                                                  spmv::Reorder::kRcm);
    const auto none_elements = halo_elements_at(pm.matrix, parts);
    const auto rcm_elements = halo_elements_at(rcm.matrix, parts);
    std::printf(
        "  %-6s none=%lld rcm=%lld (%+.1f%%) -> selected reorder=%s: "
        "total_halo_elements=%lld\n",
        pm.name.c_str(), static_cast<long long>(none_elements),
        static_cast<long long>(rcm_elements),
        100.0 * (static_cast<double>(rcm_elements - none_elements) /
                 static_cast<double>(none_elements)),
        spmv::reorder_name(reorder),
        static_cast<long long>(reorder == spmv::Reorder::kRcm ? rcm_elements
                                                              : none_elements));
  }

  // End-to-end verification of the reordered distributed pipeline on the
  // Holstein-type matrix at `parts` ranks.
  {
    const auto pm = bench::make_hmep(static_cast<int>(cli.get_int("scale")));
    const auto problem = spmv::make_reordered_problem(pm.matrix, reorder);
    util::Xoshiro256 rng(7);
    std::vector<value_t> x(static_cast<std::size_t>(pm.matrix.cols()));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);

    const auto x_reordered = problem.to_reordered(x);
    spmv::Timings volume;
    const auto y_parallel = engine_product(problem.matrix, x_reordered, parts,
                                           /*parallel_gather=*/true, &volume);
    const auto y_serial = engine_product(problem.matrix, x_reordered, parts,
                                         /*parallel_gather=*/false);
    const bool gather_bitwise =
        std::memcmp(y_parallel.data(), y_serial.data(),
                    y_parallel.size() * sizeof(value_t)) == 0;

    const auto y = problem.to_original(y_parallel);
    std::vector<value_t> oracle(static_cast<std::size_t>(pm.matrix.rows()));
    sparse::spmv(pm.matrix, x, oracle);
    double max_error = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      max_error = std::max(max_error, std::abs(y[i] - oracle[i]));
    }

    std::printf(
        "\nverification (%s, %d ranks, reorder=%s): engine halo bytes "
        "sent=%lld recv=%lld msgs=%lld\n",
        pm.name.c_str(), parts, spmv::reorder_name(reorder),
        static_cast<long long>(volume.bytes_sent),
        static_cast<long long>(volume.bytes_received),
        static_cast<long long>(volume.messages));
    std::printf(
        "  parallel vs serial gather results bitwise identical: %s\n"
        "  max |y - oracle| after inverse permutation: %.3e (%s; the "
        "reordered sweep reassociates each row's sum, so equality to the "
        "original-order oracle is up to roundoff)\n",
        gather_bitwise ? "yes" : "NO",
        max_error, max_error < 1e-10 ? "OK" : "FAIL");
    if (!gather_bitwise || max_error >= 1e-10) return 1;
  }

  std::printf(
      "expected: steep growth at small node counts that flattens (HMeP "
      "saturates once every phonon-block coupling is cut); the flattening "
      "point is where the paper's efficiency knee sits. sAMG grows "
      "gently throughout (surface-to-volume). RCM cuts the halo at small "
      "part counts (bandwidth bounds the coupling surface a contiguous "
      "cut exposes) but can lose to the natural HMeP block order at high "
      "part counts.\n");
  return 0;
}
