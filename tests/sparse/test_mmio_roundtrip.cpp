// Property sweep: Matrix Market write/read round-trips preserve every
// generated matrix family bit-for-bit (within printed precision).

#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "matgen/heisenberg.hpp"
#include "matgen/holstein.hpp"
#include "matgen/poisson.hpp"
#include "matgen/random_matrix.hpp"
#include "sparse/mmio.hpp"

namespace hspmv::sparse {
namespace {

void expect_identical(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  const auto arp = a.row_ptr();
  const auto brp = b.row_ptr();
  for (std::size_t i = 0; i < arp.size(); ++i) ASSERT_EQ(arp[i], brp[i]);
  const auto ac = a.col_idx();
  const auto bc = b.col_idx();
  const auto av = a.val();
  const auto bv = b.val();
  for (std::size_t k = 0; k < ac.size(); ++k) {
    ASSERT_EQ(ac[k], bc[k]);
    ASSERT_DOUBLE_EQ(av[k], bv[k]);
  }
}

CsrMatrix roundtrip(const CsrMatrix& m) {
  std::stringstream buffer;
  write_matrix_market(buffer, m);
  return read_matrix_market(buffer);
}

class MmioFamilies : public ::testing::TestWithParam<int> {};

TEST_P(MmioFamilies, RoundTripExact) {
  const int family = GetParam();
  CsrMatrix m;
  switch (family) {
    case 0:
      m = matgen::poisson7({.nx = 6, .ny = 5, .nz = 4,
                            .grading = 1.1, .coefficient_jitter = 0.3,
                            .seed = 3});
      break;
    case 1: {
      matgen::HolsteinHubbardParams p;
      p.sites = 3;
      p.electrons_up = 1;
      p.electrons_down = 2;
      p.phonon_modes = 2;
      p.max_phonons = 3;
      m = matgen::holstein_hubbard(p);
      break;
    }
    case 2:
      m = matgen::heisenberg_chain({.sites = 8, .up_spins = 3});
      break;
    case 3:
      m = matgen::random_power_law(200, 3, 0.6, 8);
      break;
    case 4:
      m = matgen::random_banded(150, 12, 5, 2);
      break;
    default:
      FAIL();
  }
  expect_identical(m, roundtrip(m));
}

INSTANTIATE_TEST_SUITE_P(Families, MmioFamilies,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(MmioRoundTrip, ExtremeValues) {
  CooBuilder b(3, 3);
  b.add(0, 0, 1e-300);
  b.add(1, 1, -1e300);
  b.add(2, 2, 0.1 + 0.2);  // a value with no short decimal form
  const CsrMatrix m(3, 3, b.finish());
  expect_identical(m, roundtrip(m));
}

TEST(MmioRoundTrip, DoubleRoundTripIsStable) {
  const auto m = matgen::random_sparse(80, 5, 4);
  const auto once = roundtrip(m);
  const auto twice = roundtrip(once);
  expect_identical(once, twice);
}

}  // namespace
}  // namespace hspmv::sparse
