#include "spmv/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "perfmodel/code_balance.hpp"
#include "sparse/ell.hpp"
#include "sparse/kernels.hpp"
#include "team/thread_team.hpp"
#include "util/aligned.hpp"
#include "util/timer.hpp"

namespace hspmv::spmv {

using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

MatrixFingerprint MatrixFingerprint::of(const sparse::CsrMatrix& a) {
  MatrixFingerprint fp;
  fp.rows = a.rows();
  fp.cols = a.cols();
  fp.nnz = a.nnz();
  if (a.rows() == 0) return fp;
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const double mean =
      static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  double variance = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto len = static_cast<index_t>(
        row_ptr[static_cast<std::size_t>(i) + 1] -
        row_ptr[static_cast<std::size_t>(i)]);
    fp.max_row_length = std::max(fp.max_row_length, len);
    const double d = static_cast<double>(len) - mean;
    // HSPMV-CHECK-ALLOW(determinism-policy): fixed ascending-row sum for the structural fingerprint; not a certified numeric result
    variance += d * d;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      const auto distance = static_cast<index_t>(
          std::abs(static_cast<std::int64_t>(col_idx[static_cast<std::size_t>(
                       j)]) -
                   static_cast<std::int64_t>(i)));
      fp.bandwidth = std::max(fp.bandwidth, distance);
    }
  }
  fp.mean_row_length = mean;
  fp.stddev_row_length =
      std::sqrt(variance / static_cast<double>(a.rows()));
  return fp;
}

std::string MatrixFingerprint::key() const {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), "v1|%d|%d|%lld|%.6g|%.6g|%d|%d",
                rows, cols, static_cast<long long>(nnz), mean_row_length,
                stddev_row_length, max_row_length, bandwidth);
  return buffer;
}

namespace {

/// from_csr's sigma normalization (keep in sync with SellMatrix).
int effective_sigma(int sigma, int chunk) {
  if (sigma > 1 && sigma % chunk != 0) sigma += chunk - sigma % chunk;
  return sigma;
}

/// SELL padding ratio beta = slots/nnz for (chunk, sigma), simulated from
/// the row lengths alone — the model prior never builds the matrix.
double simulated_padding_ratio(std::vector<index_t> lengths, offset_t nnz,
                               int chunk, int sigma) {
  if (nnz == 0) return 1.0;
  const auto rows = static_cast<std::int64_t>(lengths.size());
  if (sigma > 1) {
    for (std::int64_t w = 0; w < rows; w += sigma) {
      const auto end = std::min<std::int64_t>(rows, w + sigma);
      std::sort(lengths.begin() + w, lengths.begin() + end,
                std::greater<index_t>());
    }
  }
  std::int64_t slots = 0;
  for (std::int64_t base = 0; base < rows; base += chunk) {
    const auto end = std::min<std::int64_t>(rows, base + chunk);
    index_t width = 0;
    for (std::int64_t r = base; r < end; ++r) {
      width = std::max(width, lengths[static_cast<std::size_t>(r)]);
    }
    // Full chunk stride, ragged last chunk included (from_csr allocates
    // width * chunk slots per chunk unconditionally).
    slots += static_cast<std::int64_t>(width) * chunk;
  }
  return static_cast<double>(slots) / static_cast<double>(nnz);
}

struct ScoredConfig {
  TunedConfig config;
  double balance = 0.0;
};

/// All (backend, C, sigma) candidates with their code-balance model
/// values, deduplicated on the *effective* sigma and deterministically
/// ordered (csr, then sell by ascending C, sigma).
std::vector<ScoredConfig> scored_candidates(const sparse::CsrMatrix& a,
                                            const AutotuneOptions& options) {
  std::vector<ScoredConfig> scored;
  const double nnzr =
      a.rows() > 0
          ? static_cast<double>(a.nnz()) / static_cast<double>(a.rows())
          : 0.0;
  scored.push_back(
      {TunedConfig{LocalBackend::kCsr, 0, 0, true},
       perfmodel::crs_code_balance(std::max(nnzr, 1.0), options.kappa)});
  if (a.rows() == 0 || a.nnz() == 0) return scored;

  std::vector<index_t> lengths(static_cast<std::size_t>(a.rows()));
  const auto row_ptr = a.row_ptr();
  for (index_t i = 0; i < a.rows(); ++i) {
    lengths[static_cast<std::size_t>(i)] = static_cast<index_t>(
        row_ptr[static_cast<std::size_t>(i) + 1] -
        row_ptr[static_cast<std::size_t>(i)]);
  }

  std::set<std::pair<int, int>> seen;
  for (const int chunk : options.chunks) {
    if (chunk < 1) continue;
    const int sigmas[] = {1, chunk, 8 * chunk,
                          static_cast<int>(std::min<std::int64_t>(
                              a.rows(), std::numeric_limits<int>::max()))};
    for (const int sigma : sigmas) {
      if (sigma < 1) continue;
      const int eff = effective_sigma(sigma, chunk);
      if (!seen.insert({chunk, eff}).second) continue;
      const double beta =
          simulated_padding_ratio(lengths, a.nnz(), chunk, eff);
      scored.push_back(
          {TunedConfig{LocalBackend::kSell, chunk, eff, true},
           perfmodel::sell_code_balance(std::max(nnzr, 1.0), options.kappa,
                                        beta)});
    }
  }
  return scored;
}

/// Wall-clock measurement of one candidate: min-over-reps time of the
/// full local sweep at `options.threads` workers with the candidate's
/// schedule. The team outlives the call (one fork/join per rep).
double measure_config(const sparse::CsrMatrix& a, const TunedConfig& config,
                      const AutotuneOptions& options,
                      team::ThreadTeam& team) {
  if (options.measure) return options.measure(config);
  // Measurement buffers placed the way the engine places its own
  // vectors: the team first-touches the pages it will sweep, so the
  // candidate timings see production NUMA locality instead of
  // master-thread pages.
  util::FirstTouchVector<value_t> x(static_cast<std::size_t>(a.cols()));
  util::FirstTouchVector<value_t> y(static_cast<std::size_t>(a.rows()));
  {
    const auto x_bounds = team::uniform_boundaries(
        static_cast<std::int64_t>(x.size()), team.size());
    const auto y_bounds = team::uniform_boundaries(
        static_cast<std::int64_t>(y.size()), team.size());
    util::first_touch_fill(team, std::span<value_t>(x),
                           std::span<const std::int64_t>(x_bounds));
    util::first_touch_fill(team, std::span<value_t>(y),
                           std::span<const std::int64_t>(y_bounds));
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.125 * static_cast<double>(i % 7);  // deterministic RHS
  }
  const int reps = std::max(1, options.reps);
  double best = std::numeric_limits<double>::infinity();
  if (config.backend == LocalBackend::kCsr) {
    const auto view = sparse::view(a);
    const auto bounds =
        config.nnz_balanced
            ? team::nnz_balanced_boundaries(a.row_ptr(), team.size())
            : team::uniform_boundaries(a.rows(), team.size());
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer timer;
      team.execute([&](int id) {
        sparse::spmv_rows(
            view,
            static_cast<index_t>(bounds[static_cast<std::size_t>(id)]),
            static_cast<index_t>(bounds[static_cast<std::size_t>(id) + 1]),
            x, y);
      });
      best = std::min(best, timer.seconds());
    }
  } else {
    const auto sell = sparse::SellMatrix::from_csr(a, config.sell_chunk,
                                                   config.sell_sigma);
    const auto bounds =
        config.nnz_balanced
            ? team::nnz_balanced_boundaries(sell.chunk_offsets(), team.size())
            : team::uniform_boundaries(sell.chunk_count(), team.size());
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer timer;
      team.execute([&](int id) {
        sell.spmv_chunks(
            static_cast<index_t>(bounds[static_cast<std::size_t>(id)]),
            static_cast<index_t>(bounds[static_cast<std::size_t>(id) + 1]),
            x, y);
      });
      best = std::min(best, timer.seconds());
    }
  }
  return best;
}

/// Minimal tolerant JSON field extraction for the cache's fixed schema.
/// Each helper scans `object` for `"name":` and parses the value after
/// it; returns false on absence or malformed content.
bool find_field(const std::string& object, const std::string& name,
                std::size_t& value_pos) {
  const std::string needle = "\"" + name + "\"";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t colon = object.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  value_pos = object.find_first_not_of(" \t\r\n", colon + 1);
  return value_pos != std::string::npos;
}

bool extract_string(const std::string& object, const std::string& name,
                    std::string& out) {
  std::size_t pos = 0;
  if (!find_field(object, name, pos) || object[pos] != '"') return false;
  const std::size_t end = object.find('"', pos + 1);
  if (end == std::string::npos) return false;
  out = object.substr(pos + 1, end - pos - 1);
  return true;
}

bool extract_double(const std::string& object, const std::string& name,
                    double& out) {
  std::size_t pos = 0;
  if (!find_field(object, name, pos)) return false;
  try {
    out = std::stod(object.substr(pos));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool extract_int(const std::string& object, const std::string& name,
                 int& out) {
  std::size_t pos = 0;
  if (!find_field(object, name, pos)) return false;
  try {
    out = std::stoi(object.substr(pos));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool extract_bool(const std::string& object, const std::string& name,
                  bool& out) {
  std::size_t pos = 0;
  if (!find_field(object, name, pos)) return false;
  if (object.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (object.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

TuningCache TuningCache::load(const std::filesystem::path& path) {
  TuningCache cache;
  std::ifstream in(path);
  if (!in) return cache;  // missing/unreadable -> empty, tune-on-miss
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Version gate: a mismatched (or absent) version rejects the whole
  // file — the schema may have changed, so nothing in it is trusted.
  int version = -1;
  if (!extract_int(text, "version", version) || version != kVersion) {
    return cache;
  }

  // Entries are scanned object by object; a malformed entry is skipped
  // without poisoning its neighbours.
  std::size_t pos = 0;
  while ((pos = text.find("{\"key\"", pos)) != std::string::npos) {
    const std::size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string object = text.substr(pos, end - pos + 1);
    pos = end + 1;

    TuningEntry entry;
    std::string key;
    std::string backend;
    if (!extract_string(object, "key", key) ||
        !extract_string(object, "backend", backend) ||
        !extract_int(object, "chunk", entry.config.sell_chunk) ||
        !extract_int(object, "sigma", entry.config.sell_sigma) ||
        !extract_bool(object, "nnz_balanced", entry.config.nnz_balanced) ||
        !extract_double(object, "seconds", entry.seconds)) {
      continue;
    }
    try {
      entry.config.backend = parse_backend(backend);
    } catch (const std::invalid_argument&) {
      continue;
    }
    if (entry.config.backend == LocalBackend::kAuto) continue;
    if (entry.config.backend == LocalBackend::kSell &&
        (entry.config.sell_chunk < 1 || entry.config.sell_sigma < 1)) {
      continue;
    }
    cache.entries_[key] = entry;
  }
  return cache;
}

void TuningCache::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      throw std::runtime_error("TuningCache: cannot write " + tmp.string());
    }
    out << "{\n  \"version\": " << kVersion << ",\n  \"entries\": [";
    bool first = true;
    for (const auto& [key, entry] : entries_) {
      if (!first) out << ",";
      first = false;
      char seconds[32];
      std::snprintf(seconds, sizeof(seconds), "%.9g", entry.seconds);
      out << "\n    {\"key\": \"" << key << "\", \"backend\": \""
          << backend_name(entry.config.backend)
          << "\", \"chunk\": " << entry.config.sell_chunk
          << ", \"sigma\": " << entry.config.sell_sigma
          << ", \"nnz_balanced\": "
          << (entry.config.nnz_balanced ? "true" : "false")
          << ", \"seconds\": " << seconds << "}";
    }
    out << "\n  ]\n}\n";
  }
  std::filesystem::rename(tmp, path);  // atomic on POSIX
}

const TuningEntry* TuningCache::find(const std::string& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void TuningCache::insert(const std::string& key, const TuningEntry& entry) {
  entries_[key] = entry;
}

std::filesystem::path default_cache_path() {
  if (const char* env = std::getenv("HSPMV_TUNING_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::filesystem::path(home) / ".cache" / "hspmv" /
           "tuning-v1.json";
  }
  return "hspmv-tuning-v1.json";
}

std::vector<TunedConfig> candidate_configs(const sparse::CsrMatrix& a,
                                           const AutotuneOptions& options) {
  auto scored = scored_candidates(a, options);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : scored) best = std::min(best, s.balance);
  std::vector<TunedConfig> configs;
  for (const auto& s : scored) {
    if (options.prune_ratio > 0.0 && s.balance > options.prune_ratio * best) {
      continue;
    }
    configs.push_back(s.config);
  }
  return configs;
}

TunedConfig model_pick(const sparse::CsrMatrix& a,
                       const AutotuneOptions& options) {
  const auto scored = scored_candidates(a, options);
  const ScoredConfig* best = &scored.front();
  for (const auto& s : scored) {
    if (s.balance < best->balance) best = &s;  // ties keep the earlier
  }
  TunedConfig config = best->config;
  config.nnz_balanced = true;
  return config;
}

TuningEntry autotune(const sparse::CsrMatrix& a,
                     const AutotuneOptions& options) {
  const auto candidates = candidate_configs(a, options);
  team::ThreadTeam team(std::max(1, options.threads));
  TuningEntry best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (const TunedConfig& candidate : candidates) {
    std::vector<TunedConfig> schedules{candidate};
    if (options.threads > 1) {
      TunedConfig uniform = candidate;
      uniform.nnz_balanced = false;
      schedules.push_back(uniform);
    }
    for (const TunedConfig& config : schedules) {
      const double seconds = measure_config(a, config, options, team);
      if (seconds < best.seconds) {
        best.config = config;
        best.seconds = seconds;
      }
    }
  }
  if (!std::isfinite(best.seconds)) {
    best.config = TunedConfig{LocalBackend::kCsr, 0, 0, true};
    best.seconds = 0.0;
  }
  return best;
}

TunedConfig resolve_tuned(const sparse::CsrMatrix& a, TuneMode mode,
                          const std::string& cache_path,
                          const AutotuneOptions& options) {
  if (mode == TuneMode::kOff) return model_pick(a, options);
  const std::filesystem::path path =
      cache_path.empty() ? default_cache_path()
                         : std::filesystem::path(cache_path);
  const std::string key = MatrixFingerprint::of(a).key();
  TuningCache cache = TuningCache::load(path);
  if (mode == TuneMode::kCached) {
    if (const TuningEntry* hit = cache.find(key)) return hit->config;
  }
  const TuningEntry entry = autotune(a, options);
  cache.insert(key, entry);
  try {
    cache.save(path);
  } catch (const std::exception&) {
    // An unwritable cache must not fail the engine — the tuning result
    // is still used, it just will not persist.
  }
  return entry.config;
}

}  // namespace hspmv::spmv
