#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hspmv::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] + fraction * (values[lower + 1] - values[lower]);
}

double imbalance_factor(const std::vector<double>& per_worker) {
  if (per_worker.empty()) return 1.0;
  double sum = 0.0;
  double max = -std::numeric_limits<double>::infinity();
  for (double v : per_worker) {
    sum += v;
    max = std::max(max, v);
  }
  const double mean = sum / static_cast<double>(per_worker.size());
  if (mean == 0.0) return 1.0;
  return max / mean;
}

double spread_factor(const std::vector<double>& per_worker) {
  if (per_worker.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(per_worker.begin(),
                                            per_worker.end());
  if (*lo == 0.0) {
    return *hi == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return *hi / *lo;
}

}  // namespace hspmv::util
