// EXP-F3 — reproduces Fig. 3: node-level performance of the test systems.
//
//  (a) Intel Nehalem EP: STREAM triad bandwidth, spMVM bandwidth and
//      spMVM performance (HMeP) for 1..4 cores and the full node —
//      the paper's ladder 0.91 / 1.50 / 1.95 / 2.25 / 4.29 GFlop/s.
//  (b) Intel Westmere EP and AMD Magny Cours: same sweep over 1..6 cores,
//      one LD, one AMD socket (2 LDs), full node.
//
// The machine curves come from the calibrated saturation model; a real
// STREAM triad measured on *this* host is printed for reference.

#include <cstdio>

#include "machine/node_spec.hpp"
#include "perfmodel/code_balance.hpp"
#include "perfmodel/stream.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hspmv;

void sweep(const machine::NodeSpec& node, double nnzr, double kappa) {
  const double balance = perfmodel::crs_code_balance(nnzr, kappa);
  const auto spmv_curve = node.spmv_curve();
  const auto stream_curve = node.stream_curve();

  std::printf("--- %s (Nnzr = %.0f, kappa = %.2f, B_CRS = %.2f B/F) ---\n",
              node.name.c_str(), nnzr, kappa, balance);
  util::Table table({"cores", "STREAM triad [GB/s]", "spMVM bw [GB/s]",
                     "spMVM perf [GFlop/s]"});
  util::PlotSeries perf_series{"spMVM performance", {}, {}, '#'};
  for (int c = 1; c <= node.cores_per_domain; ++c) {
    const double bw = spmv_curve.value(c);
    table.add_row({util::Table::cell(static_cast<std::int64_t>(c)),
                   util::Table::cell(stream_curve.value(c) / 1e9, 1),
                   util::Table::cell(bw / 1e9, 1),
                   util::Table::cell(bw / balance / 1e9, 2)});
    perf_series.x.push_back(c);
    perf_series.y.push_back(bw / balance / 1e9);
  }
  // Aggregates: one socket/LD, then the full node.
  const double domain_bw = spmv_curve.value(node.cores_per_domain);
  const double node_bw = domain_bw * node.numa_domains;
  table.add_row({"1 LD",
                 util::Table::cell(
                     stream_curve.value(node.cores_per_domain) / 1e9, 1),
                 util::Table::cell(domain_bw / 1e9, 1),
                 util::Table::cell(domain_bw / balance / 1e9, 2)});
  table.add_row({"1 node",
                 util::Table::cell(stream_curve.value(node.cores_per_domain) *
                                       node.numa_domains / 1e9,
                                   1),
                 util::Table::cell(node_bw / 1e9, 1),
                 util::Table::cell(node_bw / balance / 1e9, 2)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "  kappa = 0 bound: %.2f GFlop/s per LD (paper Sect. 2: 2.66 for "
      "Nehalem)\n\n",
      perfmodel::performance_bound(node.spmv_bw_domain,
                                   perfmodel::crs_code_balance(nnzr, 0.0)) /
          1e9);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("fig3_node_level",
                      "Fig. 3 — node-level performance (model + host "
                      "STREAM)");
  cli.add_flag("skip-host-stream", "skip the real STREAM measurement");
  if (!cli.parse(argc, argv)) return 1;

  std::printf("Fig. 3 — node-level STREAM and spMVM performance (HMeP)\n\n");
  std::printf("(a) Intel Nehalem EP\n");
  sweep(machine::nehalem_ep(), 15.0, 2.5);
  std::printf("(b) Intel Westmere EP / AMD Magny Cours\n");
  sweep(machine::westmere_ep(), 15.0, 2.5);
  sweep(machine::magny_cours(), 15.0, 2.5);

  const auto amd = machine::magny_cours();
  const auto intel = machine::westmere_ep();
  std::printf(
      "node-level ratio Magny Cours / Westmere: %.2f (paper: ~1.25)\n\n",
      amd.spmv_bandwidth_node() / intel.spmv_bandwidth_node());

  if (!cli.get_flag("skip-host-stream")) {
    perfmodel::StreamOptions options;
    options.elements = 1u << 21;
    options.repetitions = 5;
    const auto triad =
        perfmodel::run_stream(perfmodel::StreamKernel::kTriad, options);
    std::printf(
        "host reference: STREAM triad %.1f GB/s nominal (%.1f GB/s with "
        "write-allocate), array size %.1f MB\n",
        triad.best_bytes_per_second / 1e9,
        triad.effective_bytes_per_second / 1e9,
        static_cast<double>(triad.array_bytes) / 1e6);
  }
  return 0;
}
