// Fixture for hspmv-check: a real finding under a justified ALLOW.
//
// Analyzed by tests/analysis/test_hspmv_check.cpp; never compiled. The
// declaration below would fire first-touch, but the marker carries a
// reason, so the driver must record it as suppressed — not unsuppressed,
// and not stale.
#include <cstddef>
#include <vector>

namespace fixture {

void justified(std::size_t n) {
  // HSPMV-CHECK-ALLOW(first-touch): fixture metadata; never swept by a team
  std::vector<double> x(n, 0.0);
  (void)x;
}

}  // namespace fixture
