// Application example 4: algebraic multigrid on the sAMG-like Poisson
// problem — the method family that produced the paper's second test
// matrix. Compares plain CG, AMG V-cycles, and AMG-preconditioned CG.

#include <cstdio>

#include "matgen/poisson.hpp"
#include "solvers/amg.hpp"
#include "solvers/cg.hpp"
#include "sparse/kernels.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hspmv;
  using sparse::value_t;

  util::CliParser cli("amg_poisson",
                      "AMG vs CG on a graded 3-D Poisson problem");
  cli.add_option("grid", "24", "cells per axis");
  cli.add_option("tol", "1e-8", "relative residual tolerance");
  if (!cli.parse(argc, argv)) return 1;

  const int grid = static_cast<int>(cli.get_int("grid"));
  const sparse::CsrMatrix a = matgen::poisson7(
      {.nx = grid, .ny = grid, .nz = grid, .grading = 1.03,
       .coefficient_jitter = 0.3, .seed = 17});
  const auto n = static_cast<std::size_t>(a.rows());
  std::printf("system: N = %d, Nnz = %lld\n", a.rows(),
              static_cast<long long>(a.nnz()));

  util::Xoshiro256 rng(4);
  std::vector<value_t> x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  sparse::spmv(a, x_true, b);

  const auto op = solvers::make_operator(a);
  const double tolerance = cli.get_double("tol");

  util::Table table({"method", "iterations/cycles", "time [ms]",
                     "rel. residual"});

  {
    solvers::CgOptions options;
    options.tolerance = tolerance;
    options.max_iterations = 5000;
    std::vector<value_t> x(n, 0.0);
    util::Timer timer;
    const auto result = solvers::conjugate_gradient(op, b, x, options);
    table.add_row({"plain CG",
                   util::Table::cell(
                       static_cast<std::int64_t>(result.iterations)),
                   util::Table::cell(timer.seconds() * 1e3, 1),
                   util::Table::cell(result.relative_residual, 12)});
  }

  util::Timer setup_timer;
  solvers::AmgHierarchy hierarchy(a);
  const double setup_ms = setup_timer.seconds() * 1e3;
  std::printf(
      "AMG: %d levels, operator complexity %.2f, setup %.1f ms\n",
      hierarchy.levels(), hierarchy.operator_complexity(), setup_ms);

  {
    std::vector<value_t> x(n, 0.0);
    util::Timer timer;
    const int cycles = hierarchy.solve(b, x, tolerance, 200);
    std::vector<value_t> r(n);
    sparse::spmv(a, x, r);
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rn += (b[i] - r[i]) * (b[i] - r[i]);
      bn += b[i] * b[i];
    }
    table.add_row({"AMG V-cycles",
                   util::Table::cell(static_cast<std::int64_t>(cycles)),
                   util::Table::cell(timer.seconds() * 1e3, 1),
                   util::Table::cell(std::sqrt(rn / bn), 12)});
  }

  int pcg_iterations = 0;
  {
    solvers::CgOptions options;
    options.tolerance = tolerance;
    std::vector<value_t> x(n, 0.0);
    util::Timer timer;
    const auto result = solvers::preconditioned_conjugate_gradient(
        op,
        [&](std::span<const value_t> r, std::span<value_t> z) {
          std::fill(z.begin(), z.end(), 0.0);
          hierarchy.v_cycle(r, z);
        },
        b, x, options);
    pcg_iterations = result.iterations;
    table.add_row({"AMG-PCG",
                   util::Table::cell(
                       static_cast<std::int64_t>(result.iterations)),
                   util::Table::cell(timer.seconds() * 1e3, 1),
                   util::Table::cell(result.relative_residual, 12)});
  }

  std::printf("%s\n", table.to_string().c_str());
  return pcg_iterations > 0 && pcg_iterations < 100 ? 0 : 1;
}
