#include "util/aligned.hpp"

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "team/thread_team.hpp"

namespace hspmv::util {
namespace {

TEST(AlignedAllocator, VectorStorageIsCacheLineAligned) {
  AlignedVector<double> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  AlignedVector<std::int32_t> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kCacheLineBytes, 0u);
}

TEST(DefaultInitAllocator, ResizeThenWriteReadsBack) {
  // Values are indeterminate after resize (that is the point — no stores,
  // pages stay untouched); anything written must read back exactly.
  FirstTouchVector<double> v;
  v.resize(10000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  for (std::size_t i = 0; i < v.size(); i += 97) {
    v[i] = static_cast<double>(i) * 0.5;
  }
  for (std::size_t i = 0; i < v.size(); i += 97) {
    EXPECT_EQ(v[i], static_cast<double>(i) * 0.5);
  }
}

TEST(DefaultInitAllocator, ValueConstructionStillWorks) {
  FirstTouchVector<double> v;
  v.push_back(3.25);
  v.assign(5, -1.0);
  for (const double x : v) EXPECT_EQ(x, -1.0);
  // Non-trivial element types keep their default constructor semantics.
  std::vector<std::vector<int>, DefaultInitAllocator<std::vector<int>>> nested;
  nested.resize(3);
  EXPECT_TRUE(nested[0].empty());
}

TEST(TouchPages, WritesStrideAndEndpoints) {
  std::vector<double> data(3000, -1.0);
  constexpr std::int64_t kStride =
      static_cast<std::int64_t>(kPageBytes / sizeof(double));  // 512
  touch_pages(std::span<double>(data), 100, 2000, 0.0);
  EXPECT_EQ(data[100], 0.0);           // range start
  EXPECT_EQ(data[100 + kStride], 0.0); // one page later
  EXPECT_EQ(data[1999], 0.0);          // range end (exclusive bound - 1)
  EXPECT_EQ(data[99], -1.0);           // before the range: untouched
  EXPECT_EQ(data[101], -1.0);          // between strides: untouched
  EXPECT_EQ(data[2000], -1.0);         // past the range: untouched
}

TEST(TouchPages, EmptyRangeIsNoOp) {
  std::vector<double> data(10, -1.0);
  touch_pages(std::span<double>(data), 4, 4, 0.0);
  for (const double x : data) EXPECT_EQ(x, -1.0);
}

TEST(FirstTouchFill, EveryElementGetsValue) {
  team::ThreadTeam team(3);
  std::vector<double> data(301, -1.0);
  const std::vector<std::int64_t> boundaries{0, 100, 200, 301};
  first_touch_fill(team, std::span<double>(data), boundaries, 2.5);
  for (const double x : data) EXPECT_EQ(x, 2.5);
}

TEST(FirstTouchFill, PartyOfOffsetAndIdleMembers) {
  // Task-mode shape: member 0 is the comm thread (party -1, idles), the
  // workers cover the parties. More members than parties also idles the
  // excess cleanly.
  team::ThreadTeam team(4);
  std::vector<double> data(50, -1.0);
  const std::vector<std::int64_t> boundaries{0, 30, 50};
  first_touch_fill(
      team, std::span<double>(data), boundaries,
      [](int id) { return id - 1; }, 9.0);
  for (const double x : data) EXPECT_EQ(x, 9.0);
}

TEST(FirstTouchVector, CopiesExactlyWithEdgeExtension) {
  // Boundaries that do not span the whole array: member 0 extends its
  // chunk to the front, the last party to the back — nothing is dropped.
  team::ThreadTeam team(2);
  std::vector<std::int64_t> src(1000);
  std::iota(src.begin(), src.end(), 17);
  const std::vector<std::int64_t> boundaries{100, 600, 900};
  const auto copy = first_touch_vector<std::int64_t>(
      team, std::span<const std::int64_t>(src), boundaries);
  ASSERT_EQ(copy.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(copy[i], src[i]) << "element " << i;
  }
}

TEST(FirstTouchVector, FewerPartiesThanTeamMembers) {
  team::ThreadTeam team(4);
  std::vector<double> src(333);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<double>(i) * 1.25;
  }
  const std::vector<std::int64_t> boundaries{0, 333};  // one party, 3 idle
  const auto copy = first_touch_vector<double>(
      team, std::span<const double>(src), boundaries);
  ASSERT_EQ(copy.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(copy[i], src[i]);
  }
}

TEST(FirstTouchVector, EmptySource) {
  team::ThreadTeam team(2);
  const std::vector<double> src;
  const std::vector<std::int64_t> boundaries{0, 0, 0};
  const auto copy = first_touch_vector<double>(
      team, std::span<const double>(src), boundaries);
  EXPECT_TRUE(copy.empty());
}

}  // namespace
}  // namespace hspmv::util
